"""Paper-style table rendering for the benchmark harness.

The paper's Tables 1–5 are matrices of reorder-buffer sizes (rows) by
issue/retire widths (columns); impossible configurations (width > size)
are printed as a dash.  :func:`render_matrix` reproduces that layout.

:func:`render_diagnostics` is the human-readable sink for the soundness
analyzers of :mod:`repro.analysis` (``python -m repro lint`` and the
``--analyze`` mode of the single-run CLI).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "render_matrix",
    "render_rows",
    "render_diagnostics",
    "render_metrics",
    "render_span_tree",
]


def render_matrix(
    title: str,
    sizes: Sequence[int],
    widths: Sequence[int],
    cell: Callable[[int, int], Optional[object]],
    size_header: str = "Size",
    value_format: str = "{}",
) -> str:
    """Render a sizes-by-widths matrix the way the paper's tables do.

    ``cell(size, width)`` returns the value for one configuration or
    ``None`` for an impossible/omitted one (printed as a dash).
    """
    header = [size_header] + [str(width) for width in widths]
    rows: List[List[str]] = [header]
    for size in sizes:
        row = [str(size)]
        for width in widths:
            value = cell(size, width) if width <= size else None
            row.append("-" if value is None else value_format.format(value))
        rows.append(row)
    return _tabulate(title, rows)


def render_rows(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a simple header + rows table."""
    table = [list(map(str, header))] + [list(map(str, row)) for row in rows]
    return _tabulate(title, table)


def render_diagnostics(diagnostics: Sequence, title: str = "Findings") -> str:
    """Render analyzer :class:`~repro.analysis.diagnostics.Diagnostic`
    records as a severity-sorted table, with a per-severity tally line."""
    from ..analysis.diagnostics import sort_report, summarize

    ordered = sort_report(diagnostics)
    counts = summarize(ordered)
    tally = ", ".join(
        f"{count} {severity}" for severity, count in counts.items() if count
    ) or "no findings"
    if not ordered:
        return f"{title}: {tally}"
    rows = [
        (diag.severity, diag.stage, diag.check, diag.subject or "-",
         diag.message)
        for diag in ordered
    ]
    table = render_rows(
        f"{title} ({tally})",
        ("severity", "stage", "check", "subject", "message"),
        rows,
    )
    return table


def render_metrics(
    metrics: Dict[str, float], title: str = "Metrics"
) -> str:
    """Render a flat metric dict (``name -> value``) as a sorted table.

    The human-readable sink for campaign-level aggregates
    (:attr:`~repro.campaign.runner.CampaignReport.metrics`) and benchmark
    snapshots; values print as integers when they are whole.
    """
    def fmt(value: float) -> str:
        return f"{int(value)}" if float(value).is_integer() else f"{value:.4f}"

    rows = [(name, fmt(value)) for name, value in sorted(metrics.items())]
    if not rows:
        return f"{title}: none recorded"
    return render_rows(title, ("metric", "value"), rows)


def render_span_tree(root, title: Optional[str] = None) -> str:
    """Render a ``verify(trace=True)`` span tree as an indented profile.

    Thin delegate to :func:`repro.obs.exporters.render_span_tree`, kept
    here so every human-readable report sink lives in one module.
    """
    from ..obs.exporters import render_span_tree as _render

    text = _render(root)
    return f"{title}\n{text}" if title else text


def _tabulate(title: str, rows: List[List[str]]) -> str:
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(rows[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
