"""repro — reproduction of Velev's DATE 2002 paper.

"Using Rewriting Rules and Positive Equality to Formally Verify Wide-Issue
Out-Of-Order Microprocessors with a Reorder Buffer."

Public API highlights:

* :func:`repro.core.verify` — end-to-end verification of a parameterized
  abstract out-of-order processor against its ISA specification, by the
  paper's rewriting-rules method or by Positive Equality alone.
* :mod:`repro.eufm` — the EUFM logic (terms, formulas, memories).
* :mod:`repro.processor` — the processor models and the Burch-Dill
  correctness formula.
* :mod:`repro.rewriting` — the paper's rewriting-rule engine.
* :mod:`repro.encode` — the Positive-Equality EUFM-to-CNF translation.
* :mod:`repro.sat` — the CDCL SAT solver.
* :mod:`repro.campaign` — crash-safe batched verification campaigns with
  retries, budget escalation and graceful degradation.
* :mod:`repro.service` — the long-lived verification-as-a-service job
  server (``python -m repro serve``) with a content-addressed result
  cache and persistent witness-artifact store.
* :mod:`repro.errors` — the structured exception taxonomy
  (:class:`~repro.errors.ReproError` and friends).
"""

__version__ = "1.2.0"

from .core import VerificationResult, verify
from .errors import (
    BudgetExhausted,
    CampaignError,
    EncodingError,
    JournalError,
    ReproError,
    RewriteFailed,
    SolverError,
)
from .processor import Bug, BugKind, ProcessorConfig, forwarding_bug

__all__ = [
    "VerificationResult",
    "verify",
    "Bug",
    "BugKind",
    "ProcessorConfig",
    "forwarding_bug",
    "ReproError",
    "BudgetExhausted",
    "RewriteFailed",
    "EncodingError",
    "SolverError",
    "CampaignError",
    "JournalError",
    "__version__",
]
