"""Invariant auditing of the CNF translation and the ``e_ij`` graph.

The checks here run over the *artifacts* of :func:`repro.encode.evc.
encode_validity` — the Tseitin clause database and the ``e_ij``/
transitivity results — and verify the invariants the SAT handoff relies
on:

* clause hygiene: no tautological clauses, no duplicate clauses, no
  literals over unallocated variables, no stray empty clause;
* var-map consistency: every primary variable in the Tseitin ``var_map``
  is allocated, carries the matching name in the clause database, and
  every *named* CNF variable is conversely reachable from the var map
  (a named variable the map forgot cannot be decoded from a model);
* the root literal is asserted as a unit clause when the translation is
  used for satisfiability checking;
* ``e_ij`` naming discipline (``eij!<low>!<high>`` for the sorted pair);
* transitivity completeness: every triangle of the chordalized
  comparison graph (original ``e_ij`` edges plus fill edges) has its
  three implication constraints emitted.  A missing triangle means a
  propositional model may not correspond to any equivalence relation —
  the classic unsoundness of an incomplete ``e_ij`` encoding.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..encode.eij import EijResult
from ..encode.transitivity import TransitivityResult
from ..eufm.ast import BoolVar, TermVar
from ..sat.tseitin import TseitinResult
from .diagnostics import ERROR, INFO, WARNING, Diagnostic

__all__ = ["audit_cnf", "audit_eij_transitivity"]


def audit_cnf(
    result: TseitinResult, expect_root_unit: bool = True
) -> List[Diagnostic]:
    """All clause-database findings for one Tseitin translation."""
    diagnostics: List[Diagnostic] = []
    cnf = result.cnf

    seen_clauses: Dict[FrozenSet[int], int] = {}
    for index, clause in enumerate(cnf.clauses):
        literals = set(clause)
        if 0 in literals:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="cnf",
                check="cnf.zero-literal",
                subject=f"clause {index}",
                message="clause contains the reserved literal 0",
            ))
        if any(-lit in literals for lit in literals):
            diagnostics.append(Diagnostic(
                severity=WARNING,
                stage="cnf",
                check="cnf.tautological-clause",
                subject=f"clause {index}",
                message=(
                    "clause contains a complementary literal pair and is "
                    "always satisfied; it should be dropped before the "
                    "solver handoff"
                ),
                data={"clause": list(clause)},
            ))
        if any(abs(lit) > cnf.num_vars for lit in literals):
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="cnf",
                check="cnf.unallocated-variable",
                subject=f"clause {index}",
                message="clause references a variable that was never allocated",
                data={"clause": list(clause)},
            ))
        if not clause and result.constant is None:
            diagnostics.append(Diagnostic(
                severity=WARNING,
                stage="cnf",
                check="cnf.unexpected-empty-clause",
                subject=f"clause {index}",
                message=(
                    "empty clause in a non-constant translation; the CNF is "
                    "trivially unsatisfiable regardless of the formula"
                ),
            ))
        key = frozenset(clause)
        if key in seen_clauses and clause:
            diagnostics.append(Diagnostic(
                severity=WARNING,
                stage="cnf",
                check="cnf.duplicate-clause",
                subject=f"clause {index}",
                message=(
                    f"clause duplicates clause {seen_clauses[key]}; "
                    "duplicates cost solver time without constraining models"
                ),
                data={"clause": list(clause), "first": seen_clauses[key]},
            ))
        else:
            seen_clauses.setdefault(key, index)

    for var, cnf_index in result.var_map.items():
        if not (1 <= cnf_index <= cnf.num_vars):
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="cnf",
                check="cnf.var-map-out-of-range",
                subject=var.name,
                message=(
                    f"var map sends {var.name!r} to CNF variable "
                    f"{cnf_index}, outside 1..{cnf.num_vars}"
                ),
            ))
            continue
        recorded = cnf.names.get(cnf_index)
        if recorded != var.name:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="cnf",
                check="cnf.var-map-name-mismatch",
                subject=var.name,
                message=(
                    f"CNF variable {cnf_index} is named {recorded!r} in the "
                    f"clause database but maps from {var.name!r}"
                ),
            ))
    mapped_indices = set(result.var_map.values())
    for cnf_index, name in sorted(cnf.names.items()):
        if cnf_index not in mapped_indices:
            diagnostics.append(Diagnostic(
                severity=WARNING,
                stage="cnf",
                check="cnf.named-var-not-in-var-map",
                subject=name,
                message=(
                    f"CNF variable {cnf_index} carries the name {name!r} "
                    "but is absent from the var map; its model value cannot "
                    "be decoded back to the EUFM level"
                ),
            ))

    if expect_root_unit and result.root_literal is not None:
        if (result.root_literal,) not in cnf.clauses:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="cnf",
                check="cnf.root-not-asserted",
                subject=str(result.root_literal),
                message=(
                    "the root literal is not asserted as a unit clause; "
                    "the CNF does not constrain the formula's value"
                ),
            ))

    if not diagnostics:
        diagnostics.append(Diagnostic(
            severity=INFO,
            stage="cnf",
            check="cnf.audit-clean",
            message=(
                f"{cnf.num_clauses} clause(s) over {cnf.num_vars} "
                "variable(s) audited"
            ),
        ))
    return diagnostics


def _expected_name(pair: FrozenSet[TermVar]) -> str:
    low, high = sorted(var.name for var in pair)
    return f"eij!{low}!{high}"


def audit_eij_transitivity(
    eij: EijResult, trans: Optional[TransitivityResult]
) -> List[Diagnostic]:
    """Check ``e_ij`` naming and transitivity-triangle completeness."""
    diagnostics: List[Diagnostic] = []
    edges: Dict[FrozenSet[TermVar], BoolVar] = dict(eij.eij_vars)
    if trans is not None:
        edges.update(trans.fill_vars)

    for pair, var in sorted(edges.items(), key=lambda item: item[1].name):
        expected = _expected_name(pair)
        if var.name != expected:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="encode",
                check="eij.misnamed-variable",
                subject=var.name,
                message=(
                    f"e_ij variable for pair {expected[4:]!r} is named "
                    f"{var.name!r}; model decoding keys on the naming "
                    "convention"
                ),
            ))

    if trans is not None:
        adjacency: Dict[TermVar, Set[TermVar]] = {}
        for pair in edges:
            a, b = tuple(pair)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        emitted = {frozenset(triangle) for triangle in trans.triangles}
        for triangle in trans.triangles:
            for first, second in (
                (triangle[0], triangle[1]),
                (triangle[0], triangle[2]),
                (triangle[1], triangle[2]),
            ):
                if frozenset((first, second)) not in edges:
                    diagnostics.append(Diagnostic(
                        severity=ERROR,
                        stage="encode",
                        check="eij.triangle-over-unknown-edge",
                        subject=_expected_name(frozenset((first, second))),
                        message=(
                            "a transitivity triangle references a pair with "
                            "no e_ij or fill variable"
                        ),
                    ))
        seen_missing: Set[FrozenSet[TermVar]] = set()
        for pair in edges:
            a, b = tuple(pair)
            for common in adjacency.get(a, set()) & adjacency.get(b, set()):
                triangle = frozenset((a, b, common))
                if triangle in emitted or triangle in seen_missing:
                    continue
                seen_missing.add(triangle)
                names = sorted(var.name for var in triangle)
                diagnostics.append(Diagnostic(
                    severity=ERROR,
                    stage="encode",
                    check="eij.missing-transitivity-triangle",
                    subject="/".join(names),
                    message=(
                        "triangle of the chordalized comparison graph has "
                        "no transitivity constraints; a SAT model may not "
                        "correspond to any equivalence relation"
                    ),
                ))

    if not diagnostics:
        triangles = len(trans.triangles) if trans is not None else 0
        diagnostics.append(Diagnostic(
            severity=INFO,
            stage="encode",
            check="eij.transitivity-clean",
            message=(
                f"{len(edges)} comparison edge(s) and {triangles} "
                "triangle(s) audited"
            ),
        ))
    return diagnostics
