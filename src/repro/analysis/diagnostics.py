"""Structured findings produced by the soundness analyzers.

Every checker in :mod:`repro.analysis` reports :class:`Diagnostic` records
rather than printing or raising: a diagnostic names the pipeline *stage*
it audits (``polarity``, ``rules``, ``cnf``, ``dag``, ``encode``,
``rewrite``), a machine-readable *check* identifier, the *subject* it
flagged (a node, rule name or clause index) and a human explanation.
Severities follow the ``repro lint`` exit-code contract:

* ``error`` — a soundness invariant is violated; the encoder or a rewrite
  rule cannot be trusted.  ``python -m repro lint`` exits non-zero and
  :func:`repro.core.verify` in ``strict`` mode raises
  :class:`~repro.errors.AnalysisError`.
* ``warning`` — sound but suspicious (lost precision, dead artifacts).
* ``info`` — statistics worth journaling (rule application tallies...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "AnalysisReport",
    "Diagnostic",
    "errors_in",
    "max_severity",
    "summarize",
    "sort_report",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: All severities, most severe first (the order used for sorting reports).
SEVERITIES = (ERROR, WARNING, INFO)

_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass
class Diagnostic:
    """One finding of a soundness analyzer."""

    severity: str
    #: pipeline stage audited: polarity | rules | cnf | dag | encode | rewrite.
    stage: str
    #: stable machine identifier, e.g. ``"polarity.p-var-in-general-position"``.
    check: str
    #: human-readable explanation of the finding.
    message: str
    #: what was flagged: a rule name, a variable/node rendering, a clause index.
    subject: str = ""
    #: structured payload (witness interpretations, counts, names).
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; use one of {SEVERITIES}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity,
            "stage": self.stage,
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Diagnostic":
        return cls(
            severity=payload["severity"],
            stage=payload["stage"],
            check=payload["check"],
            message=payload.get("message", ""),
            subject=payload.get("subject", ""),
            data=dict(payload.get("data", {})),
        )

    def render(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity}: {self.stage}/{self.check}{subject}: {self.message}"


def errors_in(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The error-level findings, in report order."""
    return [diag for diag in diagnostics if diag.is_error]


def max_severity(diagnostics: Iterable[Diagnostic]) -> str:
    """The most severe level present; ``"info"`` for an empty report."""
    best = INFO
    for diag in diagnostics:
        if _RANK[diag.severity] < _RANK[best]:
            best = diag.severity
    return best


def summarize(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """Counts per severity (all severities present, possibly zero)."""
    counts = {severity: 0 for severity in SEVERITIES}
    for diag in diagnostics:
        counts[diag.severity] += 1
    return counts


def sort_report(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable sort: errors first, then warnings, then info."""
    return sorted(diagnostics, key=lambda diag: _RANK[diag.severity])


@dataclass
class AnalysisReport:
    """A set of findings plus the shared exit-code contract.

    Both diagnostic CLIs — ``python -m repro lint`` and ``python -m
    repro staticcheck`` — wrap their findings in this report, so they
    emit one JSON schema (``max_severity`` / ``summary`` /
    ``findings``) and exit non-zero exactly when error-level findings
    are present.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, findings: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    @property
    def errors(self) -> List[Diagnostic]:
        return errors_in(self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def exit_code(self) -> int:
        return 1 if self.has_errors else 0

    def to_dict(self) -> Dict[str, Any]:
        ordered = sort_report(self.diagnostics)
        return {
            "max_severity": max_severity(ordered),
            "summary": summarize(ordered),
            "findings": [diag.to_dict() for diag in ordered],
        }

    def render(self, title: str = "Soundness findings") -> str:
        from ..core.reporting import render_diagnostics

        return render_diagnostics(self.diagnostics, title=title)
