"""``python -m repro lint`` — run the soundness analyzers.

Examples::

    python -m repro lint
    python -m repro lint --grid 3x2,4x2 --method rewriting
    python -m repro lint --json
    python -m repro lint --rules-only

The default run audits the rewrite-rule registry plus a couple of small
processor configurations under both verification methods.  Exit status:
0 — no error-level findings; 1 — at least one error-level finding
(soundness invariant violated); 2 — the lint run itself was
misconfigured or crashed on a structured error.

``--json`` prints a machine-readable report: ``max_severity``, a
per-severity ``summary`` and the full ``findings`` list (each finding
carries ``severity``, ``stage``, ``check``, ``subject``, ``message`` and
a structured ``data`` payload such as the witness interpretation of an
unsound rewrite rule).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..errors import ReproError
from ..processor.params import ProcessorConfig
from .diagnostics import ERROR, WARNING
from .pipeline import AnalysisReport, build_report

__all__ = ["build_parser", "main"]

#: Configurations small enough for CI yet exercising width > 1 (two
#: updates per front entry) and a non-trivial e_ij comparison graph.
DEFAULT_GRID = "2x1,3x2"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Audit the verification pipeline: polarity cross-check, "
            "rewrite-rule safety, CNF/e_ij invariants and DAG hygiene."
        ),
    )
    parser.add_argument(
        "--grid",
        default=DEFAULT_GRID,
        metavar="N1xK1,N2xK2,...",
        help=f"configurations to audit (default: {DEFAULT_GRID})",
    )
    parser.add_argument(
        "--method",
        choices=("rewriting", "positive_equality", "both"),
        default="both",
        help="verification method(s) to audit (default: both)",
    )
    parser.add_argument(
        "--criterion",
        choices=("disjunction", "case_split"),
        default="disjunction",
        help="correctness criterion (default: disjunction)",
    )
    parser.add_argument(
        "--no-rules",
        action="store_true",
        help="skip the rewrite-rule registry analysis",
    )
    parser.add_argument(
        "--rules-only",
        action="store_true",
        help="analyze only the rewrite-rule registry (no configurations)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON on stdout",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only errors and warnings (human output)",
    )
    return parser


def _parse_grid(grid: str) -> List[ProcessorConfig]:
    configs: List[ProcessorConfig] = []
    for chunk in grid.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            n_text, k_text = chunk.lower().split("x", 1)
            configs.append(
                ProcessorConfig(n_rob=int(n_text), issue_width=int(k_text))
            )
        except ValueError as exc:
            raise ReproError(
                f"bad --grid entry {chunk!r}; expected the form NxK "
                f"(e.g. 3x2): {exc}"
            )
    return configs


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        configs = [] if args.rules_only else _parse_grid(args.grid)
        if args.method == "both":
            methods: Sequence[str] = ("rewriting", "positive_equality")
        else:
            methods = (args.method,)
        report = build_report(
            configs,
            methods=methods,
            criterion=args.criterion,
            check_rules=not args.no_rules,
        )
    except ReproError as exc:
        print(f"lint failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        shown = report
        if args.quiet:
            shown = AnalysisReport([
                diag for diag in report.diagnostics
                if diag.severity in (ERROR, WARNING)
            ])
        print(shown.render())
        if report.has_errors:
            print(
                f"\n{len(report.errors)} soundness error(s) found",
                file=sys.stderr,
            )
    return report.exit_code
