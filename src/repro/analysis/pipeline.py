"""Orchestration of the soundness analyzers over the verification flow.

:func:`analyze_encoding` audits the artifacts of one
:func:`repro.encode.evc.encode_validity` run — polarity cross-check,
maximal-diversity audit, transitivity completeness, propositional
residue, clause hygiene and DAG hygiene.  :func:`analyze_config` drives
the same pipeline the verifier uses (simulate, optionally rewrite,
encode) for a processor configuration and audits every stage, adding the
rewrite-rule application tally.  :func:`build_report` / ``repro lint``
run :func:`analyze_config` over a set of configurations plus the
rule-safety registry analysis of :mod:`repro.analysis.rule_safety`.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` records; an
:class:`AnalysisReport` wraps a list of them with the exit-code contract
(non-zero exactly when error-level findings are present).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..encode.evc import EncodedValidity, encode_validity
from ..eufm.traversal import term_variables
from ..processor.bugs import Bug
from ..processor.correctness import build_correctness_formula, run_diagram
from ..processor.params import ProcessorConfig
from ..rewriting.engine import rewrite_diagram
from .cnf_audit import audit_cnf, audit_eij_transitivity
from .dag_lint import audit_hash_consing, audit_memory_free, audit_propositional
from .diagnostics import (
    ERROR,
    INFO,
    AnalysisReport,
    Diagnostic,
)
from .polarity_check import audit_diversity, cross_check_polarity, derive_polarity
from .rule_safety import RuleSpec, analyze_rules

__all__ = [
    "AnalysisReport",
    "analyze_encoding",
    "analyze_config",
    "analyze_verification",
    "rewrite_tally_diagnostic",
    "build_report",
]


def analyze_encoding(encoded: EncodedValidity) -> List[Diagnostic]:
    """Audit every artifact of one EUFM-to-CNF translation."""
    diagnostics: List[Diagnostic] = []

    memory_free = encoded.memory_free
    clean_memory = False
    if memory_free is not None:
        residue = audit_memory_free(memory_free, stage="encode")
        diagnostics.extend(residue)
        clean_memory = not residue

    if memory_free is not None and clean_memory and encoded.polarity is not None:
        diagnostics.extend(cross_check_polarity(memory_free, encoded.polarity))

    if encoded.eij is not None and encoded.polarity is not None:
        independent_g = None
        known_vars = None
        encoding_g = None
        if encoded.uf_elim is not None:
            encoding_g = set(encoded.polarity.g_vars)
            encoding_g |= encoded.uf_elim.fresh_g_vars
            if memory_free is not None and clean_memory:
                # The justification for maximal diversity lives at the
                # pre-UF-elimination level: re-derive the g-set there and
                # extend it to the fresh variables whose symbol is
                # independently general (BGV inheritance).
                independent = derive_polarity(memory_free)
                independent_g = set(independent.g_vars)
                for fresh in encoded.uf_elim.fresh_term_vars:
                    symbol, _args = encoded.uf_elim.provenance[fresh]
                    if symbol in independent.g_symbols:
                        independent_g.add(fresh)
                known_vars = set(term_variables(memory_free))
                known_vars |= set(encoded.uf_elim.fresh_term_vars)
        diagnostics.extend(audit_diversity(
            encoded.eij,
            encoded.polarity,
            independent_g_vars=independent_g,
            known_vars=known_vars,
            encoding_g_vars=encoding_g,
        ))
        diagnostics.extend(
            audit_eij_transitivity(encoded.eij, encoded.transitivity)
        )

    diagnostics.extend(
        audit_propositional(encoded.propositional, stage="encode")
    )
    roots = [encoded.propositional]
    if memory_free is not None:
        roots.append(memory_free)
    diagnostics.extend(audit_hash_consing(*roots))

    if encoded.tseitin is not None:
        diagnostics.extend(audit_cnf(encoded.tseitin, expect_root_unit=True))
    elif encoded.constant_validity is None:
        diagnostics.append(Diagnostic(
            severity=ERROR,
            stage="cnf",
            check="cnf.translation-missing",
            message=(
                "the encoding produced neither a CNF translation nor a "
                "constant verdict"
            ),
        ))
    return diagnostics


def rewrite_tally_diagnostic(rewrite, subject: str) -> Diagnostic:
    """Info-level record of how many times each rewrite rule fired."""
    tally = getattr(rewrite, "rules_applied", {}) or {}
    if tally:
        message = "rule applications: " + ", ".join(
            f"{rule}={count}" for rule, count in sorted(tally.items())
        )
    else:
        message = "no rule applications recorded"
    return Diagnostic(
        severity=INFO,
        stage="rewrite",
        check="rewrite.rules-applied",
        subject=subject,
        message=message,
        data={"rules_applied": dict(tally)},
    )


def analyze_verification(result) -> List[Diagnostic]:
    """Audit the artifacts a finished :func:`repro.core.verify` run left.

    Unlike :func:`analyze_config`, a rewriting failure is *not* a finding
    here: the verification result already reports it as a (suspected)
    design bug, which is a verdict, not a soundness defect.
    """
    subject = f"{result.config.describe()} [{result.method}]"
    diagnostics: List[Diagnostic] = []
    if result.rewrite is not None and result.rewrite.succeeded:
        diagnostics.append(
            rewrite_tally_diagnostic(result.rewrite, subject)
        )
    if result.validity is not None:
        for diag in analyze_encoding(result.validity.encoded):
            if not diag.subject:
                diag.subject = subject
            diagnostics.append(diag)
    return diagnostics


def analyze_config(
    config: ProcessorConfig,
    method: str = "rewriting",
    criterion: str = "disjunction",
    bug: Optional[Bug] = None,
) -> List[Diagnostic]:
    """Drive the verifier's pipeline for ``config`` and audit every stage."""
    subject = f"{config.describe()} [{method}]"
    diagnostics: List[Diagnostic] = []
    artifacts = run_diagram(config, bug=bug)

    if method == "rewriting":
        rewrite = rewrite_diagram(artifacts, criterion=criterion)
        if not rewrite.succeeded:
            failure = rewrite.failure
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="rewrite",
                check="rewrite.slice-did-not-conform",
                subject=subject,
                message=failure.describe(),
                data={"entry": failure.entry, "stage": failure.stage},
            ))
            return diagnostics
        diagnostics.append(rewrite_tally_diagnostic(rewrite, subject))
        formula = rewrite.reduced_formula
        memory_mode = "conservative"
    elif method == "positive_equality":
        formula = build_correctness_formula(artifacts, criterion=criterion)
        memory_mode = "precise"
    else:
        raise ValueError(f"unknown method {method!r}")

    encoded = encode_validity(formula, memory_mode=memory_mode)
    for diag in analyze_encoding(encoded):
        if not diag.subject:
            diag.subject = subject
        diagnostics.append(diag)
    return diagnostics


def build_report(
    configs: Sequence[ProcessorConfig],
    methods: Sequence[str] = ("rewriting", "positive_equality"),
    criterion: str = "disjunction",
    check_rules: bool = True,
    rule_specs: Optional[Sequence[RuleSpec]] = None,
) -> AnalysisReport:
    """The full ``repro lint`` report: rule registry plus configurations."""
    report = AnalysisReport()
    if check_rules:
        report.extend(analyze_rules(rule_specs))
    for config in configs:
        for method in methods:
            report.extend(
                analyze_config(config, method=method, criterion=criterion)
            )
    return report
