"""Hygiene lint over the hash-consed EUFM DAG.

Three invariants keep the rest of the stack honest:

* **hash-consing** — structurally identical sub-expressions must be the
  *same* object (``intern_node`` guarantees it for expressions built
  through the public constructors).  A structural duplicate means some
  code path bypassed interning; identity-keyed caches (polarity masks,
  evaluation memo tables, the ``e_ij`` pair cache) silently miss on such
  nodes, so this is an error, not a style nit.
* **stage residue** — ``read``/``write`` nodes must not survive memory
  elimination, and nothing but propositional connectives may reach the
  Tseitin translation.  Both residues raise ``TypeError`` deep inside the
  pipeline eventually; the lint reports them at the stage boundary with
  an explanation instead.
* **intern-cache reachability** — nodes interned but unreachable from
  the formulas of interest are dead weight kept alive by the global
  cache (reported as info with counts; expected mid-campaign, worth
  seeing in a report).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..eufm.ast import (
    BoolConst,
    BoolVar,
    Eq,
    Expr,
    Formula,
    Read,
    TermVar,
    UFApp,
    UPApp,
    Write,
    interned_count,
)
from ..eufm.traversal import iter_dag, node_count
from .diagnostics import ERROR, INFO, Diagnostic

__all__ = [
    "audit_hash_consing",
    "audit_memory_free",
    "audit_propositional",
    "audit_intern_reachability",
    "audit_dag",
]

_PROPOSITIONAL_KINDS = ("bvar", "const", "not", "and", "or", "fite")


def _payload(node: Expr) -> Tuple:
    if isinstance(node, (TermVar, BoolVar)):
        return (node.name,)
    if isinstance(node, (UFApp, UPApp)):
        return (node.symbol,)
    if isinstance(node, BoolConst):
        return (node.value,)
    return ()


def audit_hash_consing(*roots: Expr) -> List[Diagnostic]:
    """Find structurally identical nodes that are distinct objects.

    Walks the DAG bottom-up mapping every node to a canonical
    representative keyed on ``(kind, payload, canonical children)``; a
    second object arriving at an occupied key is a duplicate.
    """
    diagnostics: List[Diagnostic] = []
    canonical: Dict[Tuple, Expr] = {}
    representative: Dict[Expr, Expr] = {}
    for node in iter_dag(*roots):
        key = (
            node.kind,
            _payload(node),
            tuple(representative[child].uid for child in node.children),
        )
        existing = canonical.get(key)
        if existing is None:
            canonical[key] = node
            representative[node] = node
        else:
            representative[node] = existing
            if existing is not node:
                diagnostics.append(Diagnostic(
                    severity=ERROR,
                    stage="dag",
                    check="dag.non-hash-consed-duplicate",
                    subject=f"{node.kind} uid={node.uid}",
                    message=(
                        f"node duplicates uid={existing.uid} structurally "
                        "but is a distinct object; identity-keyed caches "
                        "and polarity masks will miss it"
                    ),
                ))
    return diagnostics


def audit_memory_free(phi: Formula, stage: str = "dag") -> List[Diagnostic]:
    """Flag ``read``/``write`` nodes that survived memory elimination."""
    diagnostics: List[Diagnostic] = []
    for node in iter_dag(phi):
        if isinstance(node, (Read, Write)):
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage=stage,
                check="dag.memory-op-after-elimination",
                subject=f"{node.kind} uid={node.uid}",
                message=(
                    f"{node.kind!r} node survived memory elimination; the "
                    "polarity classification cannot handle it"
                ),
            ))
    return diagnostics


def audit_propositional(phi: Formula, stage: str = "dag") -> List[Diagnostic]:
    """Flag non-propositional residue in a formula headed for Tseitin."""
    diagnostics: List[Diagnostic] = []
    for node in iter_dag(phi):
        if node.kind not in _PROPOSITIONAL_KINDS:
            detail = (
                "an equation escaped the e_ij encoding"
                if isinstance(node, Eq)
                else "a term-level node reached the propositional layer"
            )
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage=stage,
                check="dag.non-propositional-residue",
                subject=f"{node.kind} uid={node.uid}",
                message=f"{detail}; the Tseitin translation will reject it",
            ))
    return diagnostics


def audit_intern_reachability(*roots: Expr) -> List[Diagnostic]:
    """Report interned nodes unreachable from ``roots`` (dead weight)."""
    reachable = node_count(*roots)
    interned = interned_count()
    unreachable = max(0, interned - reachable)
    if unreachable == 0:
        return []
    return [Diagnostic(
        severity=INFO,
        stage="dag",
        check="dag.interned-unreachable",
        message=(
            f"{unreachable} of {interned} interned node(s) are unreachable "
            "from the audited formulas; the global cache keeps them alive"
        ),
        data={"interned": interned, "reachable": reachable,
              "unreachable": unreachable},
    )]


def audit_dag(*roots: Expr) -> List[Diagnostic]:
    """The full hygiene report for a set of formula roots."""
    diagnostics = audit_hash_consing(*roots)
    diagnostics.extend(audit_intern_reachability(*roots))
    if not diagnostics:
        diagnostics.append(Diagnostic(
            severity=INFO,
            stage="dag",
            check="dag.audit-clean",
            message=f"{node_count(*roots)} node(s) audited",
        ))
    return diagnostics
