"""Static soundness analysis of the verification pipeline.

The analyzers audit the EUFM DAG, the Positive-Equality classification,
the rewriting rules and the CNF output *independently* of the code that
produced them:

* :mod:`~repro.analysis.polarity_check` — re-derives the p/g
  classification with a different algorithm and cross-checks
  ``classify()``; audits every maximal-diversity decision of the
  ``e_ij`` encoder;
* :mod:`~repro.analysis.rule_safety` — checks the rewrite rules' side
  conditions statically and validates their soundness by exhaustive
  evaluation over small universes;
* :mod:`~repro.analysis.cnf_audit` — clause hygiene, var-map
  consistency and transitivity-triangle completeness;
* :mod:`~repro.analysis.dag_lint` — hash-consing and stage-residue
  invariants over the expression DAG;
* :mod:`~repro.analysis.pipeline` — orchestration over whole processor
  configurations (``python -m repro lint``, ``verify(analyze=True)``).

All findings are :class:`~repro.analysis.diagnostics.Diagnostic`
records; error-level findings drive the non-zero exit of ``repro lint``
and the :class:`~repro.errors.AnalysisError` raised by strict mode.
"""

from .diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    AnalysisReport,
    Diagnostic,
    errors_in,
    max_severity,
    sort_report,
    summarize,
)
from .cnf_audit import audit_cnf, audit_eij_transitivity
from .dag_lint import (
    audit_dag,
    audit_hash_consing,
    audit_intern_reachability,
    audit_memory_free,
    audit_propositional,
)
from .pipeline import (
    analyze_config,
    analyze_encoding,
    build_report,
)
from .polarity_check import (
    IndependentClassification,
    audit_diversity,
    cross_check_polarity,
    derive_polarity,
)
from .rule_safety import (
    REGISTRY,
    RuleInstance,
    RuleSpec,
    analyze_rule,
    analyze_rules,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "errors_in",
    "max_severity",
    "summarize",
    "sort_report",
    "AnalysisReport",
    "analyze_encoding",
    "analyze_config",
    "build_report",
    "IndependentClassification",
    "derive_polarity",
    "cross_check_polarity",
    "audit_diversity",
    "RuleInstance",
    "RuleSpec",
    "REGISTRY",
    "analyze_rule",
    "analyze_rules",
    "audit_cnf",
    "audit_eij_transitivity",
    "audit_dag",
    "audit_hash_consing",
    "audit_intern_reachability",
    "audit_memory_free",
    "audit_propositional",
]
