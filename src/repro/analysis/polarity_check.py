"""Independent re-derivation and cross-check of the p/g classification.

The ``e_ij`` encoding is only sound if the Positive-Equality
classification of :func:`repro.eufm.polarity.classify` is *conservative*:
every equation whose truth the adversary can constrain negatively must be
general, and every variable whose value can flow into such an equation
must be a g-variable — otherwise maximal diversity (encoding ``x = y`` as
``FALSE``) changes the validity of the formula.

:func:`derive_polarity` re-derives the classification from the BGV paper
definition with a deliberately different algorithm from
``eufm/polarity.py`` — chaotic iteration to a global fixpoint over the
node list instead of the production worklist-plus-staged-closure — so a
bug in one implementation is unlikely to hide in the other.
:func:`cross_check_polarity` compares the two and reports disagreements:

* a variable/symbol/equation that the *independent* derivation finds
  general but ``classify()`` treated as positive is **unsound** (a
  p-variable reaches a general equation, or a BOTH-polarity equation was
  treated as positive) — error;
* the converse (production more general than necessary) is sound but
  loses maximal diversity — warning.

:func:`audit_diversity` additionally checks every maximal-diversity
``FALSE`` decision of the ``e_ij`` encoder against the independent
classification, and flags encodes over variables never seen by
``classify()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..encode.eij import EijResult
from ..eufm.ast import Eq, Expr, Formula, Not, Read, TermITE, TermVar, UFApp, Write
from ..eufm.polarity import BOTH, NEG, POS, PolarityInfo
from ..eufm.traversal import iter_dag
from .diagnostics import ERROR, INFO, WARNING, Diagnostic

__all__ = [
    "IndependentClassification",
    "derive_polarity",
    "cross_check_polarity",
    "audit_diversity",
]


@dataclass
class IndependentClassification:
    """The analyzer's own p/g classification of a formula."""

    equation_masks: Dict[Eq, int] = field(default_factory=dict)
    general_equations: Set[Eq] = field(default_factory=set)
    g_terms: Set[Expr] = field(default_factory=set)
    g_vars: Set[TermVar] = field(default_factory=set)
    g_symbols: Set[str] = field(default_factory=set)


def _edge_masks(node: Expr, mask: int):
    """(child, polarity mask contributed by this parent edge) pairs."""
    kind = node.kind
    if kind == "not":
        flipped = (POS if mask & NEG else 0) | (NEG if mask & POS else 0)
        yield node.arg, flipped
    elif kind in ("and", "or"):
        for arg in node.args:
            yield arg, mask
    elif kind == "fite":
        yield node.cond, BOTH
        yield node.then, mask
        yield node.els, mask
    elif kind == "tite":
        yield node.cond, BOTH


def derive_polarity(phi: Formula) -> IndependentClassification:
    """Re-derive the BGV classification by chaotic iteration to a fixpoint.

    Requires a memory-free formula, like the production classifier.
    """
    nodes = list(iter_dag(phi))
    for node in nodes:
        if isinstance(node, (Read, Write)):
            raise TypeError(
                "the polarity cross-check requires a memory-free formula"
            )

    masks: Dict[Expr, int] = {phi: POS}
    # Every term-ITE guard is a control position regardless of how the ITE
    # itself is reached (both branch values matter to the adversary).
    for node in nodes:
        if isinstance(node, TermITE):
            masks[node.cond] = masks.get(node.cond, 0) | BOTH

    changed = True
    while changed:
        changed = False
        for node in nodes:
            mask = masks.get(node, 0)
            if not mask:
                continue
            for child, child_mask in _edge_masks(node, mask):
                merged = masks.get(child, 0) | child_mask
                if merged != masks.get(child, 0):
                    masks[child] = merged
                    changed = True

    result = IndependentClassification()
    for node in nodes:
        if isinstance(node, Eq):
            mask = masks.get(node, 0)
            result.equation_masks[node] = mask
            if mask & NEG:
                result.general_equations.add(node)

    # Single combined closure of the g-term set: sides of general
    # equations seed it, term-ITE branches and same-symbol applications
    # extend it, iterated together until nothing moves.
    g_terms: Set[Expr] = set()
    for equation in result.general_equations:
        g_terms.add(equation.lhs)
        g_terms.add(equation.rhs)
    changed = True
    while changed:
        changed = False
        g_symbols = {n.symbol for n in g_terms if isinstance(n, UFApp)}
        for node in nodes:
            if node in g_terms:
                if isinstance(node, TermITE):
                    for branch in (node.then, node.els):
                        if branch not in g_terms:
                            g_terms.add(branch)
                            changed = True
            elif isinstance(node, UFApp) and node.symbol in g_symbols:
                g_terms.add(node)
                changed = True

    result.g_terms = g_terms
    result.g_vars = {n for n in g_terms if isinstance(n, TermVar)}
    result.g_symbols = {n.symbol for n in g_terms if isinstance(n, UFApp)}
    return result


def _name(node: Expr) -> str:
    return getattr(node, "name", None) or repr(node)


def cross_check_polarity(
    phi: Formula, info: PolarityInfo
) -> List[Diagnostic]:
    """Compare ``classify(phi)`` (``info``) against the re-derivation."""
    independent = derive_polarity(phi)
    diagnostics: List[Diagnostic] = []

    for equation, mask in independent.equation_masks.items():
        if mask & NEG and equation not in info.general_equations:
            kind = "BOTH-polarity" if mask == BOTH else "negative-polarity"
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="polarity",
                check="polarity.general-equation-treated-as-positive",
                subject=repr(equation),
                message=(
                    f"{kind} equation is not in the general set; encoding "
                    "it positively is unsound"
                ),
                data={"mask": mask},
            ))
    for equation in info.general_equations:
        if equation not in independent.general_equations:
            diagnostics.append(Diagnostic(
                severity=WARNING,
                stage="polarity",
                check="polarity.equation-generalized-unnecessarily",
                subject=repr(equation),
                message=(
                    "equation occurs only positively but was classified "
                    "general (sound, loses maximal diversity)"
                ),
            ))

    for var in sorted(independent.g_vars - info.g_vars, key=_name):
        diagnostics.append(Diagnostic(
            severity=ERROR,
            stage="polarity",
            check="polarity.p-var-in-general-position",
            subject=_name(var),
            message=(
                "variable reaches a general equation but was classified as "
                "a p-variable; maximal diversity over it is unsound"
            ),
        ))
    for var in sorted(info.g_vars - independent.g_vars, key=_name):
        diagnostics.append(Diagnostic(
            severity=WARNING,
            stage="polarity",
            check="polarity.var-generalized-unnecessarily",
            subject=_name(var),
            message=(
                "variable never reaches a general equation but was "
                "classified general (sound, costs an e_ij variable)"
            ),
        ))

    for symbol in sorted(independent.g_symbols - info.g_symbols):
        diagnostics.append(Diagnostic(
            severity=ERROR,
            stage="polarity",
            check="polarity.p-symbol-in-general-position",
            subject=symbol,
            message=(
                "an application of this UF reaches a general equation but "
                "the symbol was classified positive"
            ),
        ))
    for symbol in sorted(info.g_symbols - independent.g_symbols):
        diagnostics.append(Diagnostic(
            severity=WARNING,
            stage="polarity",
            check="polarity.symbol-generalized-unnecessarily",
            subject=symbol,
            message="UF symbol classified general without a general use",
        ))
    return diagnostics


def audit_diversity(
    eij: EijResult,
    info: PolarityInfo,
    independent_g_vars: Optional[Set[TermVar]] = None,
    known_vars: Optional[Set[TermVar]] = None,
    encoding_g_vars: Optional[Set[TermVar]] = None,
) -> List[Diagnostic]:
    """Audit the encoder's maximal-diversity and ``e_ij`` decisions.

    ``independent_g_vars`` is the analyzer's own general set over the
    encoded variables: the g-variables of the *pre-UF-elimination*
    formula under :func:`derive_polarity`, plus the fresh variables whose
    UF symbol is independently general (the BGV justification for
    maximal diversity lives at that level — the argument-match guards
    introduced by nested-ITE elimination do not count against it).
    ``known_vars`` is the set of term variables visible to the polarity
    classification (formula variables plus the fresh variables UF
    elimination introduced); ``encoding_g_vars`` is the general set the
    encoder was actually given.  Every pair decided ``FALSE`` must
    contain a variable that is positive under the independent
    classification too, and no encoded variable may be unknown to the
    classifier.
    """
    diagnostics: List[Diagnostic] = []
    g_for_encoding = encoding_g_vars if encoding_g_vars is not None \
        else info.g_vars

    def check_known(var: TermVar, role: str) -> None:
        if known_vars is not None and var not in known_vars:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="encode",
                check="eij.variable-unknown-to-classifier",
                subject=var.name,
                message=(
                    f"{role} involves a variable never seen by the "
                    "polarity classification"
                ),
            ))

    for pair in sorted(eij.diverse_pairs,
                       key=lambda p: sorted(v.name for v in p)):
        names = sorted(var.name for var in pair)
        for var in pair:
            check_known(var, "a maximal-diversity decision")
        if independent_g_vars is not None and all(
            var in independent_g_vars for var in pair
        ):
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="encode",
                check="eij.diversity-not-justified",
                subject="=".join(names),
                message=(
                    "equality was encoded FALSE by maximal diversity but "
                    "both variables are general under the independent "
                    "classification"
                ),
            ))
        elif all(var in g_for_encoding for var in pair):
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="encode",
                check="eij.diversity-over-g-pair",
                subject="=".join(names),
                message=(
                    "equality between two g-variables was decided FALSE "
                    "instead of getting an e_ij variable"
                ),
            ))

    for pair in eij.eij_vars:
        for var in pair:
            check_known(var, "an e_ij variable")
            if var not in g_for_encoding:
                diagnostics.append(Diagnostic(
                    severity=WARNING,
                    stage="encode",
                    check="eij.eij-over-p-var",
                    subject=var.name,
                    message=(
                        "an e_ij variable ranges over a p-variable; the "
                        "encoding is sound but gives up diversity"
                    ),
                ))
    if not diagnostics:
        diagnostics.append(Diagnostic(
            severity=INFO,
            stage="encode",
            check="eij.audit-clean",
            message=(
                f"{len(eij.eij_vars)} e_ij variable(s) and "
                f"{len(eij.diverse_pairs)} diversity decision(s) audited"
            ),
        ))
    return diagnostics
