"""Static + semantic safety analysis of the rewriting rules (Sect. 5/6).

The engine's rules live in :mod:`repro.rewriting.rules` as structural
checks over update chains.  Each entry of :data:`REGISTRY` describes one
rule *schematically*: a builder constructs a representative LHS/RHS
instance over declared pattern variables — routing through the production
helpers (``merge_contexts``, ``contexts_disjoint``, ``reduce_under``)
wherever possible, so the analyzed rewrite is the implemented one, not a
transcription of it.

For every rule the analyzer checks the declared side conditions:

* **pattern linearity** — the declared pattern variables are pairwise
  distinct and each one is bound by (occurs in) the LHS;
* **no capture** — the RHS introduces no variable absent from the LHS,
  and no variable becomes *general* (in the Positive-Equality sense) on
  the RHS that was positive on the LHS, except those the rule explicitly
  declares via ``may_generalize`` (e.g. the address comparisons the
  forwarding property necessarily introduces);
* **guard preservation** — every declared guard formula occurs in both
  the LHS and the RHS DAGs (a rewrite must not drop a context).

Soundness is then validated semantically: LHS and RHS are joined into an
equivalence (``=`` for terms, ``iff`` for formulas) and evaluated with
the reference evaluator over exhaustively enumerated small universes —
every assignment of 2 and 3 domain values to the value-sorted pattern
variables and both truth values to the Boolean ones, under multiple
UF/memory seeds.  Any interpretation where the two sides differ means
the rewrite changes validity and is reported as an error-level
diagnostic naming the rule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..eufm import builder
from ..eufm.ast import Expr, Formula, Read, Term, TermVar, Write
from ..eufm.evaluator import Interpretation, SortError, evaluate, infer_memory_sorts
from ..eufm.polarity import classify
from ..eufm.traversal import bool_variables, iter_dag, term_variables
from ..encode.memory_elim import abstract_memories_conservative
from ..rewriting.rules import (
    RuleViolation,
    contexts_disjoint,
    merge_contexts,
    reduce_under,
)
from .diagnostics import ERROR, INFO, WARNING, Diagnostic

__all__ = [
    "RuleInstance",
    "RuleSpec",
    "REGISTRY",
    "analyze_rule",
    "analyze_rules",
]

#: Name of the probe variable used to lift term rules to formulas for the
#: polarity-capture comparison; excluded from all variable accounting.
_PROBE = "rule!probe"


@dataclass
class RuleInstance:
    """A concrete schematic instance of one rewrite rule."""

    lhs: Expr
    rhs: Expr
    #: declared pattern variables (term and Boolean), by name.
    pattern_vars: Tuple[str, ...]
    #: guard formulas the rewrite must preserve on both sides.
    guards: Tuple[Formula, ...] = ()
    #: variables the rule is *allowed* to move into general positions
    #: (a declared side effect, e.g. forwarding address comparisons).
    may_generalize: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RuleSpec:
    """One registered rule: a name plus an instance builder."""

    name: str
    description: str
    build: Callable[[], RuleInstance]


# ---------------------------------------------------------------------------
# The registry: schematic instances of the paper's rules
# ---------------------------------------------------------------------------


def _reorder_disjoint_updates() -> RuleInstance:
    """Rule 1: updates with structurally disjoint contexts commute."""
    c, r = builder.bvar("rule1!c"), builder.bvar("rule1!r")
    a1, d1 = builder.tvar("rule1!a1"), builder.tvar("rule1!d1")
    a2, d2 = builder.tvar("rule1!a2"), builder.tvar("rule1!d2")
    base = builder.tvar("rule1!rf")
    ctx_retire = builder.and_(c, r)
    ctx_flush = builder.and_(c, builder.not_(r))
    if not contexts_disjoint(ctx_retire, ctx_flush):
        raise RuleViolation("rule 1 side condition rejected its own shape")

    def chain(first_ctx, first_addr, first_data, second_ctx, second_addr,
              second_data):
        state = builder.ite_term(
            first_ctx, builder.write(base, first_addr, first_data), base
        )
        return builder.ite_term(
            second_ctx, builder.write(state, second_addr, second_data), state
        )

    lhs = chain(ctx_retire, a1, d1, ctx_flush, a2, d2)
    rhs = chain(ctx_flush, a2, d2, ctx_retire, a1, d1)
    return RuleInstance(
        lhs=lhs,
        rhs=rhs,
        pattern_vars=("rule1!c", "rule1!r", "rule1!a1", "rule1!d1",
                      "rule1!a2", "rule1!d2", "rule1!rf"),
        guards=(ctx_retire, ctx_flush),
    )


def _merge_complementary_contexts() -> RuleInstance:
    """Rule 2: ``C AND R`` / ``C AND NOT R`` updates merge under ``C``."""
    c, r = builder.bvar("rule2!c"), builder.bvar("rule2!r")
    addr = builder.tvar("rule2!a")
    d_retire, d_flush = builder.tvar("rule2!d1"), builder.tvar("rule2!d2")
    base = builder.tvar("rule2!rf")
    ctx_retire = builder.and_(c, r)
    ctx_flush = builder.and_(c, builder.not_(r))
    retired = builder.ite_term(
        ctx_retire, builder.write(base, addr, d_retire), base
    )
    lhs = builder.ite_term(
        ctx_flush, builder.write(retired, addr, d_flush), retired
    )
    merged = merge_contexts(ctx_retire, ctx_flush)
    if merged is None:
        raise RuleViolation("rule 2 did not recognize its own shape")
    merged_context, residual = merged
    rhs = builder.ite_term(
        merged_context,
        builder.write(base, addr, builder.ite_term(residual, d_retire, d_flush)),
        base,
    )
    return RuleInstance(
        lhs=lhs,
        rhs=rhs,
        pattern_vars=("rule2!c", "rule2!r", "rule2!a", "rule2!d1",
                      "rule2!d2", "rule2!rf"),
        guards=(c, r),
    )


def _case_split_valid_result() -> RuleInstance:
    """Rule 3: Shannon case split via the engine's ``reduce_under``."""
    v = builder.bvar("rule3!vres")
    p, q = builder.bvar("rule3!p"), builder.bvar("rule3!q")
    x, y, z = (builder.tvar("rule3!x"), builder.tvar("rule3!y"),
               builder.tvar("rule3!z"))
    from ..eufm.ast import FALSE, TRUE

    data = builder.ite_term(
        builder.or_(v, p),
        x,
        builder.ite_term(builder.and_(v, q), y, z),
    )
    rhs = builder.ite_term(
        v,
        reduce_under(data, {v: TRUE}),
        reduce_under(data, {v: FALSE}),
    )
    return RuleInstance(
        lhs=data,
        rhs=rhs,
        pattern_vars=("rule3!vres", "rule3!p", "rule3!q", "rule3!x",
                      "rule3!y", "rule3!z"),
        guards=(v,),
    )


def _forwarding_read_push() -> RuleInstance:
    """Rule 3, subcase 2.1 substrate: the memory forwarding property."""
    mem = builder.tvar("fwd!rf")
    written, wanted = builder.tvar("fwd!dest"), builder.tvar("fwd!src")
    data = builder.tvar("fwd!result")
    lhs = builder.read(builder.write(mem, written, data), wanted)
    match = builder.eq(written, wanted)
    rhs = builder.ite_term(match, data, builder.read(mem, wanted))
    return RuleInstance(
        lhs=lhs,
        rhs=rhs,
        pattern_vars=("fwd!rf", "fwd!dest", "fwd!src", "fwd!result"),
        guards=(match,),
        # Pushing a read through a write necessarily compares addresses in
        # a control position; the classification must make them general.
        may_generalize=("fwd!dest", "fwd!src"),
    )


def _guard_split_round_trip() -> RuleInstance:
    """Rule 4 substrate: viewing a formula as an ITE on a guard."""
    from ..eufm.ast import TRUE

    g, t = builder.bvar("split!g"), builder.bvar("split!t")
    lhs = builder.or_(builder.not_(g), t)
    rhs = builder.ite_formula(g, t, TRUE)
    return RuleInstance(
        lhs=lhs,
        rhs=rhs,
        pattern_vars=("split!g", "split!t"),
        guards=(g,),
    )


REGISTRY: List[RuleSpec] = [
    RuleSpec(
        name="reorder-disjoint-updates",
        description="rule 1: an update moves over one with a disjoint context",
        build=_reorder_disjoint_updates,
    ),
    RuleSpec(
        name="merge-complementary-contexts",
        description="rule 2: Valid&retire / Valid&!retire merge under Valid",
        build=_merge_complementary_contexts,
    ),
    RuleSpec(
        name="case-split-valid-result",
        description="rule 3: Shannon split on ValidResult via reduce_under",
        build=_case_split_valid_result,
    ),
    RuleSpec(
        name="forwarding-read-push",
        description="rule 3.2.1: read-through-write forwarding property",
        build=_forwarding_read_push,
    ),
    RuleSpec(
        name="guard-split-round-trip",
        description="split_on_guard normal form: (!g | t) = ITE(g, t, TRUE)",
        build=_guard_split_round_trip,
    ),
]


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


def _var_names(*roots: Expr) -> set:
    names = {node.name for node in term_variables(*roots)}
    names |= {node.name for node in bool_variables(*roots)}
    names.discard(_PROBE)
    return names


def _as_formula(expr: Expr) -> Formula:
    """Lift a term to a formula (against a probe) for classification."""
    if isinstance(expr, Term):
        return builder.eq(expr, builder.tvar(_PROBE))
    return expr


def _classified_g_names(expr: Expr) -> set:
    """g-variable names of the (memory-abstracted) formula view of ``expr``."""
    phi = _as_formula(expr)
    if any(isinstance(node, (Read, Write)) for node in iter_dag(phi)):
        phi = abstract_memories_conservative(phi)
    info = classify(phi)
    return {var.name for var in info.g_vars} - {_PROBE}


def _static_checks(spec: RuleSpec, instance: RuleInstance) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    lhs_names = _var_names(instance.lhs)
    rhs_names = _var_names(instance.rhs)

    # Pattern linearity: declared variables are distinct and LHS-bound.
    seen = set()
    for name in instance.pattern_vars:
        if name in seen:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="rules",
                check="rules.nonlinear-pattern",
                subject=spec.name,
                message=f"pattern variable {name!r} is declared twice",
            ))
        seen.add(name)
        if name not in lhs_names:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="rules",
                check="rules.unbound-pattern-var",
                subject=spec.name,
                message=(
                    f"pattern variable {name!r} does not occur in the LHS; "
                    "the match cannot bind it"
                ),
            ))

    # No capture: the RHS must not invent variables.
    for name in sorted(rhs_names - lhs_names):
        diagnostics.append(Diagnostic(
            severity=ERROR,
            stage="rules",
            check="rules.rhs-invents-variable",
            subject=spec.name,
            message=(
                f"RHS uses variable {name!r} that the LHS never binds "
                "(captures an arbitrary value)"
            ),
        ))

    # Guard preservation: every declared context survives into the RHS.
    # (A guard may be absent from the LHS — forwarding *introduces* its
    # address comparison — but dropping one narrows no update soundly.)
    rhs_nodes = set(iter_dag(instance.rhs))
    for guard in instance.guards:
        if guard not in rhs_nodes:
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="rules",
                check="rules.guard-dropped",
                subject=spec.name,
                message=(
                    f"guard {guard!r} does not survive into the RHS; "
                    "the rewrite widens the update's context"
                ),
            ))

    # Polarity capture: the RHS may not silently make variables general.
    try:
        lhs_g = _classified_g_names(instance.lhs)
        rhs_g = _classified_g_names(instance.rhs)
    except TypeError:
        diagnostics.append(Diagnostic(
            severity=WARNING,
            stage="rules",
            check="rules.polarity-capture-unchecked",
            subject=spec.name,
            message="could not classify the rule sides for g-term capture",
        ))
    else:
        allowed = set(instance.may_generalize)
        for name in sorted(rhs_g - lhs_g - allowed):
            diagnostics.append(Diagnostic(
                severity=ERROR,
                stage="rules",
                check="rules.captures-into-general-position",
                subject=spec.name,
                message=(
                    f"variable {name!r} becomes general on the RHS without "
                    "being declared in may_generalize; applying the rule "
                    "changes the p/g classification"
                ),
            ))
        for name in sorted(lhs_g - rhs_g):
            diagnostics.append(Diagnostic(
                severity=WARNING,
                stage="rules",
                check="rules.generality-dropped",
                subject=spec.name,
                message=(
                    f"variable {name!r} is general on the LHS but positive "
                    "on the RHS"
                ),
            ))
    return diagnostics


def _semantic_check(
    spec: RuleSpec,
    instance: RuleInstance,
    domain_sizes: Sequence[int],
    seeds: Sequence[int],
    max_assignments: int,
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    lhs, rhs = instance.lhs, instance.rhs
    if lhs.is_term() != rhs.is_term():
        diagnostics.append(Diagnostic(
            severity=ERROR,
            stage="rules",
            check="rules.sort-mismatch",
            subject=spec.name,
            message="LHS and RHS have different sorts (term vs formula)",
        ))
        return diagnostics

    if lhs is rhs:
        diagnostics.append(Diagnostic(
            severity=INFO,
            stage="rules",
            check="rules.identity-after-normalization",
            subject=spec.name,
            message=(
                "LHS and RHS normalize to the same DAG node; the rule is "
                "trivially sound"
            ),
        ))
        return diagnostics

    if lhs.is_term():
        equivalence = builder.eq(lhs, rhs)
    else:
        equivalence = builder.iff(lhs, rhs)

    try:
        memory_sorted = infer_memory_sorts(equivalence)
    except SortError as exc:
        diagnostics.append(Diagnostic(
            severity=ERROR,
            stage="rules",
            check="rules.sort-mismatch",
            subject=spec.name,
            message=f"ill-sorted rule instance: {exc}",
        ))
        return diagnostics

    value_vars = sorted(
        {v for v in term_variables(equivalence) if v not in memory_sorted},
        key=lambda v: v.name,
    )
    bool_vars = sorted(bool_variables(equivalence), key=lambda v: v.name)

    checked = 0
    truncated = False
    for domain in domain_sizes:
        total = (domain ** len(value_vars)) * (2 ** len(bool_vars))
        assignments = itertools.product(
            itertools.product(range(domain), repeat=len(value_vars)),
            itertools.product((False, True), repeat=len(bool_vars)),
        )
        if total > max_assignments:
            truncated = True
            assignments = itertools.islice(assignments, max_assignments)
        for term_values, bool_values in assignments:
            for seed in seeds:
                interp = Interpretation(
                    domain_size=domain,
                    seed=seed,
                    term_values={
                        var.name: value
                        for var, value in zip(value_vars, term_values)
                    },
                    bool_values={
                        var.name: value
                        for var, value in zip(bool_vars, bool_values)
                    },
                )
                try:
                    equal = evaluate(equivalence, interp)
                except SortError as exc:
                    diagnostics.append(Diagnostic(
                        severity=ERROR,
                        stage="rules",
                        check="rules.sort-mismatch",
                        subject=spec.name,
                        message=f"ill-sorted rule instance: {exc}",
                    ))
                    return diagnostics
                checked += 1
                if not equal:
                    diagnostics.append(Diagnostic(
                        severity=ERROR,
                        stage="rules",
                        check="rules.unsound-rewrite",
                        subject=spec.name,
                        message=(
                            "LHS and RHS differ under a concrete "
                            "interpretation; the rewrite changes validity"
                        ),
                        data={
                            "domain_size": domain,
                            "seed": seed,
                            "term_values": {
                                var.name: value for var, value
                                in zip(value_vars, term_values)
                            },
                            "bool_values": {
                                var.name: value for var, value
                                in zip(bool_vars, bool_values)
                            },
                        },
                    ))
                    return diagnostics

    if truncated:
        diagnostics.append(Diagnostic(
            severity=INFO,
            stage="rules",
            check="rules.universe-truncated",
            subject=spec.name,
            message=(
                f"assignment space exceeded {max_assignments}; checked a "
                "deterministic prefix only"
            ),
        ))
    diagnostics.append(Diagnostic(
        severity=INFO,
        stage="rules",
        check="rules.verified",
        subject=spec.name,
        message=(
            f"LHS = RHS under all {checked} enumerated interpretations "
            f"(domains {tuple(domain_sizes)}, seeds {tuple(seeds)})"
        ),
        data={"interpretations": checked},
    ))
    return diagnostics


def analyze_rule(
    spec: RuleSpec,
    domain_sizes: Sequence[int] = (2, 3),
    seeds: Sequence[int] = (0, 1),
    max_assignments: int = 20_000,
) -> List[Diagnostic]:
    """All safety findings for one rule specification."""
    try:
        instance = spec.build()
    except Exception as exc:  # a broken builder is itself a finding
        return [Diagnostic(
            severity=ERROR,
            stage="rules",
            check="rules.builder-failed",
            subject=spec.name,
            message=f"rule instance builder raised {type(exc).__name__}: {exc}",
        )]
    diagnostics = _static_checks(spec, instance)
    diagnostics.extend(_semantic_check(
        spec, instance, domain_sizes, seeds, max_assignments
    ))
    return diagnostics


def analyze_rules(
    specs: Optional[Iterable[RuleSpec]] = None,
    domain_sizes: Sequence[int] = (2, 3),
    seeds: Sequence[int] = (0, 1),
    max_assignments: int = 20_000,
) -> List[Diagnostic]:
    """Safety findings for every rule in ``specs`` (default: the registry)."""
    diagnostics: List[Diagnostic] = []
    for spec in (REGISTRY if specs is None else specs):
        diagnostics.extend(analyze_rule(
            spec,
            domain_sizes=domain_sizes,
            seeds=seeds,
            max_assignments=max_assignments,
        ))
    return diagnostics
