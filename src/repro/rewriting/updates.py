"""Decomposition of Register-File expressions into update sequences.

The rewriting rules of Sect. 6 operate on the ``<context, address, data>``
update triples of Fig. 2.  Unlike :func:`repro.eufm.memory.collect_updates`,
the decomposition here also records the memory-state *node* preceding each
update — the rules need those seams: data expressions of later updates read
from them, and proven-equal prefixes are replaced through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..eufm import builder
from ..eufm.ast import Formula, Term, TermITE, TermVar, Write, TRUE
from ..guard.deadline import current_deadline

__all__ = ["ChainItem", "UpdateChain", "decompose_chain"]


@dataclass(frozen=True)
class ChainItem:
    """One update plus the chain states around it."""

    context: Formula
    addr: Term
    data: Term
    #: memory state the update applies to (reads of this update's data
    #: expression refer to it).
    prev_state: Term
    #: memory state after the update (the guarded-write node itself).
    post_state: Term


@dataclass
class UpdateChain:
    """A guarded write chain in update-list form (oldest first)."""

    base: Term
    items: List[ChainItem]

    @property
    def final_state(self) -> Term:
        return self.items[-1].post_state if self.items else self.base

    def state_after(self, count: int) -> Term:
        """The chain state after the first ``count`` updates."""
        if count == 0:
            return self.base
        return self.items[count - 1].post_state


def decompose_chain(mem: Term) -> UpdateChain:
    """Decompose a guarded write chain, keeping the intermediate states.

    Raises :class:`ValueError` when ``mem`` is not in chain form.
    """
    deadline = current_deadline()
    items_reversed: List[ChainItem] = []
    node = mem
    while True:
        deadline.tick("rewrite")
        if isinstance(node, Write):
            items_reversed.append(
                ChainItem(
                    context=TRUE,
                    addr=node.addr,
                    data=node.data,
                    prev_state=node.mem,
                    post_state=node,
                )
            )
            node = node.mem
            continue
        if isinstance(node, TermITE):
            then, els = node.then, node.els
            if isinstance(then, Write) and then.mem is els:
                items_reversed.append(
                    ChainItem(
                        context=node.cond,
                        addr=then.addr,
                        data=then.data,
                        prev_state=els,
                        post_state=node,
                    )
                )
                node = els
                continue
            if isinstance(els, Write) and els.mem is then:
                items_reversed.append(
                    ChainItem(
                        context=builder.not_(node.cond),
                        addr=els.addr,
                        data=els.data,
                        prev_state=then,
                        post_state=node,
                    )
                )
                node = then
                continue
            raise ValueError("memory term is not a guarded write chain")
        break
    items_reversed.reverse()
    return UpdateChain(base=node, items=items_reversed)
