"""The structural rewriting rules of Sect. 6.

All checks are *syntactic*, exploiting the regular structure of the
abstract out-of-order processor (all computation slices have identical
shape), exactly as the paper prescribes:

* :func:`conjuncts` / :func:`contexts_disjoint` — rule 1, reordering: an
  update moves over another when the two contexts are conjunctions sharing
  a literal in opposite polarity (the form guaranteed by in-order
  retirement).
* :func:`merge_contexts` — rule 2: the two updates of a retire-width
  instruction (``Valid_i AND retire_i`` / ``Valid_i AND NOT retire_i``)
  merge under context ``Valid_i``.
* :func:`reduce_under` — assumption-driven structural simplification used
  by the case split on ``ValidResult_i`` (rule 3), with *stop nodes* so
  large preceding-state sub-DAGs are treated as opaque leaves.
* :func:`split_on_guard` — views a formula as an ITE on a given guard,
  undoing the builder's connective normal forms.
* :func:`prove_forwarding_matches_read` — rule 3, subcase 2.1: the
  synchronized walk of the forwarding chain, the availability chain, and
  the specification-side read chain.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import ReproError
from ..eufm import builder
from ..guard.deadline import current_deadline
from ..eufm.ast import (
    FALSE,
    TRUE,
    And,
    BoolVar,
    Expr,
    Formula,
    FormulaITE,
    Not,
    Or,
    Read,
    Term,
    TermITE,
)
from ..eufm.traversal import _rebuild

__all__ = [
    "conjuncts",
    "contexts_disjoint",
    "merge_contexts",
    "reduce_under",
    "split_on_guard",
    "substitute_opaque",
    "prove_forwarding_matches_read",
    "RuleViolation",
]


class RuleViolation(ReproError):
    """A structural check failed; the message names the offending shape."""


def conjuncts(context: Formula) -> FrozenSet[Formula]:
    """The flattened conjunct set of a context formula."""
    if context is TRUE:
        return frozenset()
    if isinstance(context, And):
        return frozenset(context.args)
    return frozenset((context,))


def contexts_disjoint(ctx_a: Formula, ctx_b: Formula) -> bool:
    """Rule 1 side condition: the contexts cannot hold simultaneously.

    Detected structurally: the conjunction of the two flattened conjunct
    sets contains a complementary literal pair, where a negated conjunction
    ``NOT (x1 AND .. AND xn)`` also clashes with a set containing all of
    ``x1 .. xn`` (the in-order-retirement shape: ``NOT retire_i`` against a
    context that implies ``retire_i``).
    """
    set_a, set_b = conjuncts(ctx_a), conjuncts(ctx_b)
    if builder.and_(ctx_a, ctx_b) is FALSE:
        return True
    for one, other in ((set_a, set_b), (set_b, set_a)):
        for literal in one:
            if isinstance(literal, Not):
                body = literal.arg
                if body in other:
                    return True
                if isinstance(body, And) and set(body.args) <= other:
                    return True
    return False


def merge_contexts(
    ctx_first: Formula, ctx_second: Formula
) -> Optional[Tuple[Formula, Formula]]:
    """Rule 2: merge complementary sibling contexts.

    Expects ``ctx_first = C AND R`` and ``ctx_second = C AND NOT R`` (in
    flattened-set form, where ``R`` may stand for several conjuncts whose
    conjunction is negated in the second context).  Returns
    ``(merged_context, residual)`` — the merged context is ``C`` and the
    residual ``R`` selects between the two data expressions — or ``None``
    when the contexts do not have the complementary shape.
    """
    set_first, set_second = conjuncts(ctx_first), conjuncts(ctx_second)
    negated = [lit for lit in set_second if isinstance(lit, Not)]
    for literal in negated:
        body = literal.arg
        body_set = set(body.args) if isinstance(body, And) else {body}
        if not body_set <= set_first:
            continue
        common_first = set_first - body_set
        common_second = set_second - {literal}
        if common_first == common_second:
            merged = builder.and_(*sorted(common_first, key=lambda n: n.uid))
            return merged, body
    return None


def reduce_under(
    expr: Expr,
    assumptions: Dict[BoolVar, Formula],
    stop_nodes: Optional[Set[Expr]] = None,
) -> Expr:
    """Rebuild ``expr`` with Boolean variables fixed to constants.

    ``stop_nodes`` are treated as opaque leaves: the walk neither descends
    into nor rewrites them, which keeps per-slice checks local even though
    the data expressions reference large preceding-state chains.
    """
    stop = stop_nodes or set()
    for value in assumptions.values():
        if value is not TRUE and value is not FALSE:
            raise ValueError("assumptions must map variables to constants")
    deadline = current_deadline()
    rebuilt: Dict[Expr, Expr] = {}
    order: List[Expr] = []
    seen: Set[Expr] = set()
    stack: List[Tuple[Expr, bool]] = [(expr, False)]
    while stack:
        deadline.tick("rewrite")
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        if node in stop:
            continue
        for child in node.children:
            if child not in seen:
                stack.append((child, False))
    for node in order:
        if node in stop:
            rebuilt[node] = node
        elif isinstance(node, BoolVar) and node in assumptions:
            rebuilt[node] = assumptions[node]
        else:
            rebuilt[node] = _rebuild(node, rebuilt)
    return rebuilt[expr]


def substitute_opaque(root: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Substitution that treats the mapped nodes as opaque leaves.

    Unlike :func:`repro.eufm.traversal.substitute`, the walk does not
    descend into the replaced sub-DAGs, so replacing a large preceding
    chain state costs only the size of the logic *above* it.
    """
    deadline = current_deadline()
    rebuilt: Dict[Expr, Expr] = {}
    order: List[Expr] = []
    seen: Set[Expr] = set()
    stack: List[Tuple[Expr, bool]] = [(root, False)]
    while stack:
        deadline.tick("rewrite")
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        if node in mapping:
            continue
        for child in node.children:
            if child not in seen:
                stack.append((child, False))
    for node in order:
        replacement = mapping.get(node)
        rebuilt[node] = replacement if replacement is not None else _rebuild(
            node, rebuilt
        )
    return rebuilt[root]


def split_on_guard(
    formula: Formula, guard: Formula
) -> Optional[Tuple[Formula, Formula]]:
    """View ``formula`` as ``ITE(guard, then, els)``.

    Handles the normal forms the builder produces for formula ITEs:

    * ``ITE(guard, t, e)`` itself,
    * ``(NOT guard) OR t``      — an ITE whose else-branch is TRUE,
    * ``guard OR e``            — an ITE whose then-branch is TRUE,
    * ``guard AND t``           — an ITE whose else-branch is FALSE,
    * ``(NOT guard) AND e``     — an ITE whose then-branch is FALSE.

    Returns ``(then, els)`` or ``None`` when the shape does not match.
    """
    if isinstance(formula, FormulaITE) and formula.cond is guard:
        return formula.then, formula.els
    negated = builder.not_(guard)
    if isinstance(formula, Or):
        args = set(formula.args)
        if negated in args:
            rest = [a for a in formula.args if a is not negated]
            return builder.or_(*rest), TRUE
        if guard in args:
            rest = [a for a in formula.args if a is not guard]
            return TRUE, builder.or_(*rest)
    if isinstance(formula, And):
        args = set(formula.args)
        if guard in args:
            rest = [a for a in formula.args if a is not guard]
            return builder.and_(*rest), FALSE
        if negated in args:
            rest = [a for a in formula.args if a is not negated]
            return FALSE, builder.and_(*rest)
    return None


def prove_forwarding_matches_read(
    forwarded: Term,
    spec_read: Term,
    availability: Formula,
) -> None:
    """Rule 3, subcase 2.1: the forwarded operand equals the spec-side read.

    ``forwarded`` is the implementation's forwarding chain
    ``ITE(match_j, Result_j, ...)`` falling through to a read of the
    initial Register File; ``spec_read`` is the specification-side read of
    the same source register, pushed through the preceding updates (same
    ``match_j`` guards, data ``SpecData_j``); ``availability`` mirrors the
    chain, yielding ``ValidResult_j`` on a match.

    The three chains are walked in lockstep.  At each level the guard must
    coincide; the implementation leaf ``Result_j`` must be the
    specification leaf's ``ValidResult_j``-branch, and availability must
    yield exactly ``ValidResult_j`` (so the operand is only consumed once
    the producer has a result).  Raises :class:`RuleViolation` with the
    offending level otherwise.
    """
    deadline = current_deadline()
    level = 0
    fwd, spec, avail = forwarded, spec_read, availability
    while True:
        deadline.tick("rewrite")
        if fwd is spec:
            # Bottomed out at the same initial Register-File read (or the
            # chains collapsed early).
            return
        if not (isinstance(fwd, TermITE) and isinstance(spec, TermITE)):
            raise RuleViolation(
                f"forwarding level {level}: chain shapes diverge "
                f"({fwd.kind} vs {spec.kind})"
            )
        if fwd.cond is not spec.cond:
            raise RuleViolation(
                f"forwarding level {level}: guards differ — the comparator "
                "does not match the specification-side write condition"
            )
        guard = fwd.cond
        split = split_on_guard(avail, guard)
        if split is None:
            raise RuleViolation(
                f"forwarding level {level}: availability does not test the "
                "same producer"
            )
        avail_hit, avail_miss = split
        # On a match: the forwarded value must be the producer's Result and
        # the spec-side data must select exactly that value when the
        # producer's ValidResult (the availability condition) is true.
        spec_hit = spec.then
        hit_ok = False
        if spec_hit is fwd.then:
            hit_ok = True
        elif (
            isinstance(spec_hit, TermITE)
            and spec_hit.cond is avail_hit
            and spec_hit.then is fwd.then
        ):
            hit_ok = True
        if not hit_ok:
            raise RuleViolation(
                f"forwarding level {level}: forwarded value is not the "
                "producer's Result under its ValidResult condition"
            )
        fwd, spec, avail = fwd.els, spec.els, avail_miss
        level += 1
        if avail is TRUE and fwd is spec:
            return
        if level > 100_000:
            raise RuleViolation("forwarding chain does not terminate")
