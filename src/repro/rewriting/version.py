"""Version fingerprint of the rewrite-rule registry.

A verification verdict depends on the exact rewriting rules in force:
two runs of the same processor configuration are interchangeable only
when they ran under the same registry.  :func:`registry_version` distills
the registry into a short stable fingerprint — a SHA-256 over every
rule's name, description and *built schematic instance* (left- and
right-hand sides, guards and declared generalization allowances,
rendered to canonical s-expressions) — so any semantic change to a rule
changes the fingerprint even when the rule's name does not.

The service layer's content-addressed result cache
(:mod:`repro.service.cache`) folds this fingerprint into every cache key
(:func:`repro.core.keys.canonical_key`): a registry change silently
invalidates every cached verdict instead of serving results proved under
different rules.  ``python -m repro --version`` prints it so clients and
stored artifacts can record provenance.
"""

from __future__ import annotations

import hashlib
from typing import Optional

__all__ = ["registry_version", "registry_fingerprint"]

_cached: Optional[str] = None


def registry_fingerprint() -> str:
    """Full SHA-256 hex digest of the canonical registry serialization."""
    # Imported lazily: repro.analysis imports repro.rewriting at module
    # level, so a module-level import here would be circular.
    from ..analysis.rule_safety import REGISTRY
    from ..eufm.printer import to_sexpr

    parts = []
    for spec in sorted(REGISTRY, key=lambda spec: spec.name):
        instance = spec.build()
        parts.append("\n".join((
            f"name={spec.name}",
            f"description={spec.description}",
            f"lhs={to_sexpr(instance.lhs)}",
            f"rhs={to_sexpr(instance.rhs)}",
            f"pattern_vars={','.join(instance.pattern_vars)}",
            "guards=" + ";".join(to_sexpr(g) for g in instance.guards),
            f"may_generalize={','.join(instance.may_generalize)}",
        )))
    payload = "\n--\n".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def registry_version() -> str:
    """Short registry fingerprint, e.g. ``"5r-1a2b3c4d5e6f"``.

    The leading count makes adding/removing a rule visible at a glance;
    the 12-hex-digit digest tail tracks every semantic change.  Stable
    across processes and field orderings (the serialization is sorted
    and canonical), cached after the first call.
    """
    global _cached
    if _cached is None:
        from ..analysis.rule_safety import REGISTRY

        _cached = f"{len(REGISTRY)}r-{registry_fingerprint()[:12]}"
    return _cached
