"""The paper's contribution: rewriting rules over update sequences.

Given the simulated Burch–Dill diagram, the engine proves that every
instruction initially in the reorder buffer produces equal Register-File
updates on both sides, removes those updates, and rebuilds a correctness
formula whose size is independent of the reorder-buffer size.
"""

from .engine import RewriteFailure, RewriteResult, rewrite_diagram
from .rules import (
    RuleViolation,
    conjuncts,
    contexts_disjoint,
    merge_contexts,
    prove_forwarding_matches_read,
    reduce_under,
    split_on_guard,
)
from .updates import ChainItem, UpdateChain, decompose_chain
from .version import registry_fingerprint, registry_version

__all__ = [
    "registry_fingerprint",
    "registry_version",
    "RewriteFailure",
    "RewriteResult",
    "rewrite_diagram",
    "RuleViolation",
    "conjuncts",
    "contexts_disjoint",
    "merge_contexts",
    "prove_forwarding_matches_read",
    "reduce_under",
    "split_on_guard",
    "ChainItem",
    "UpdateChain",
    "decompose_chain",
]
