"""The rewriting engine: proving the instructions initially in the ROB
produce equal updates along both sides of the commutative diagram.

Processing order follows Sect. 6: front of the ROB first.  For every
initial entry ``i`` the engine

1. locates the entry's updates on the implementation side — two for an
   instruction within the retire width (retirement during the regular
   cycle, completion during flushing), one otherwise;
2. checks the reordering side conditions (rule 1) against every update
   standing between them — structural disjointness from in-order
   retirement;
3. merges the pair (rule 2): contexts ``C AND retire_i`` and
   ``C AND NOT retire_i`` combine under ``C``, matching the
   specification side's context (``C`` is ``Valid_i`` for the paper's
   register-register design; the memory families add the
   writes-register-file / is-store kind conjuncts);
4. proves the written data equal (rule 3) by a case split on
   ``ValidResult_i`` — and, in the memory families, on the entry's
   symbolic instruction-kind variables — with structural reduction,
   including the forwarding-versus-specification-read chain walk for
   operands of instructions executed during the regular cycle (the same
   walk handles register forwarding and store-to-load forwarding: both
   chains are built from exactly the pieces ``push_read`` produces);
5. removes the proven pair from both sides (rule 4).

The memory families maintain *two* update chains per side — the Register
File and the Data Memory — processed in lock step entry by entry, since a
load's data references the Data-Memory state of the already-proven prefix
and a store's data references the Register-File state of it.

For the *branch* families the engine declines to reduce
(``result.reduction == "none"``): the wrong-path flag threaded through
the abstraction function couples each entry's completion context to the
taken-branch outcomes of *every older entry*, on the implementation side
through post-step latched state and on the specification side through
the initial variables, so the retire/flush context pair of entry ``i >= 2``
has no structural complement and rule 2 cannot fire.  The engine then
returns the *unreduced* correctness formula and the caller falls back to
the Positive-Equality translation with the precise memory model — making
"does the rewriting-rule ROB-size independence survive branches?" an
honestly measurable question (see EXPERIMENTS.md).  A rule-5-style
normalization of the wrong-path contexts is future work.

A slice that does not conform is reported as a potential bug with its
entry number — the paper's 72nd-slice experiment.  After all ``N`` initial
entries are processed, the correctness formula is rebuilt over fresh
``RegFile_equal_state`` (and, for memory families, ``DMem_equal_state``)
variables and depends only on the newly fetched instructions.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import RewriteFailed
from ..eufm import builder
from ..guard.deadline import current_deadline
from ..eufm.ast import (
    FALSE,
    TRUE,
    BoolVar,
    Expr,
    Formula,
    Term,
    TermITE,
    TermVar,
    UFApp,
)
from ..eufm.memory import push_read
from ..obs.tracer import current_tracer
from ..processor.correctness import DiagramArtifacts, build_correctness_formula
from ..processor.families import Family
from ..processor.isa import ALU, MEM_ADDR, kind_precedence, writes_reg_file
from .rules import (
    RuleViolation,
    contexts_disjoint,
    merge_contexts,
    prove_forwarding_matches_read,
    reduce_under,
    substitute_opaque,
)
from .updates import ChainItem, UpdateChain, decompose_chain

__all__ = ["RewriteFailure", "RewriteResult", "rewrite_diagram"]

_fresh_counter = itertools.count(1)


@dataclass(frozen=True)
class RewriteFailure:
    """A computation slice that did not conform to the expected structure."""

    entry: int
    stage: str  # "locate" | "reorder" | "merge" | "data"
    detail: str

    def describe(self) -> str:
        return f"slice {self.entry} failed at {self.stage}: {self.detail}"


@dataclass
class RewriteResult:
    """Outcome of applying the rewriting rules to a simulated diagram."""

    artifacts: DiagramArtifacts
    proved_entries: List[int] = field(default_factory=list)
    failure: Optional[RewriteFailure] = None
    #: ``"full"`` — every initial entry proved and removed, the reduced
    #: formula depends only on the fetched instructions; ``"none"`` — the
    #: engine declined (branch families) and ``reduced_formula`` is the
    #: *unreduced* correctness formula, to be decided with the precise
    #: memory model.
    reduction: str = "full"
    #: the simplified correctness formula (None when a slice failed).
    reduced_formula: Optional[Formula] = None
    #: the implementation-side Register File over ``RegFile_equal_state``.
    reduced_rf_impl: Optional[Term] = None
    #: the specification-side Register Files (0..k steps) over the same
    #: fresh variable.
    reduced_spec_rfs: List[Term] = field(default_factory=list)
    #: Data-Memory counterparts of the two fields above (memory families).
    reduced_dmem_impl: Optional[Term] = None
    reduced_spec_dmems: List[Term] = field(default_factory=list)
    #: how many times each rule fired, keyed by rule name — the tally
    #: journaled by campaigns and reported by ``repro lint``.
    rules_applied: Dict[str, int] = field(default_factory=dict)
    rewrite_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.failure is None


def rewrite_diagram(
    artifacts: DiagramArtifacts, criterion: str = "disjunction"
) -> RewriteResult:
    """Apply the Sect. 6 rewriting rules to the diagram's update sequences.

    Recorded as a ``"rewrite"`` span on the ambient tracer, carrying the
    per-rule firing counts and the number of entries proved/removed.
    """
    with current_tracer().span("rewrite") as span:
        result = _rewrite_diagram(artifacts, criterion)
        for rule, count in result.rules_applied.items():
            span.add(f"rewrite.rule.{rule}", count)
        span.add("rewrite.entries_proved", len(result.proved_entries))
        span.add(
            "rewrite.updates_removed", result.rules_applied.get("remove", 0)
        )
        span.add("rewrite.passes", 1)
        span.set("rewrite.succeeded", 1.0 if result.succeeded else 0.0)
        span.set("rewrite.full_reduction",
                 1.0 if result.reduction == "full" else 0.0)
        return result


@dataclass
class _ChainState:
    """One update chain (Register File or Data Memory) being processed."""

    name: str
    working: List[ChainItem]
    spec_items: List[ChainItem]
    spec_chain: UpdateChain


def _rewrite_diagram(
    artifacts: DiagramArtifacts, criterion: str
) -> RewriteResult:
    start = time.perf_counter()
    result = RewriteResult(artifacts=artifacts)
    config = artifacts.config
    family = config.family_spec
    n, l = config.n_rob, config.retire_width
    proc_vars = artifacts.proc.vars

    if family.has_branches:
        # The wrong-path flag couples every entry's completion context to
        # all older entries' taken-branch outcomes (latched post-step state
        # on the implementation side, initial variables on the
        # specification side), so the rule-2 complement never materializes
        # structurally.  Decline to reduce; the caller decides the full
        # formula with the precise memory model instead.
        result.reduction = "none"
        result.reduced_formula = build_correctness_formula(
            artifacts, criterion=criterion
        )
        _tally(result.rules_applied, "fallback")
        result.rewrite_seconds = time.perf_counter() - start
        return result

    rf_state = _decompose_side(
        "RegFile",
        artifacts.rf_impl,
        artifacts.spec_states[0].reg_file,
        artifacts.initial_rf,
    )
    chains = [rf_state]
    if family.has_memory:
        chains.append(
            _decompose_side(
                "DMem",
                artifacts.dmem_impl,
                artifacts.spec_states[0].dmem,
                artifacts.initial_dmem,
            )
        )

    deadline = current_deadline()
    for entry in range(1, n + 1):
        deadline.check("rewrite")
        failure = _process_entry(
            entry, l, proc_vars, family, chains, result.rules_applied
        )
        if failure is not None:
            result.failure = failure
            result.rewrite_seconds = time.perf_counter() - start
            return result
        result.proved_entries.append(entry)

    for chain in chains:
        if chain.spec_items:
            result.failure = RewriteFailure(
                entry=0,
                stage="locate",
                detail=f"{len(chain.spec_items)} unmatched specification-"
                f"side {chain.name} updates",
            )
            result.rewrite_seconds = time.perf_counter() - start
            return result

    _build_reduced_formula(artifacts, criterion, result)
    result.rewrite_seconds = time.perf_counter() - start
    return result


def _decompose_side(
    name: str, impl_root: Term, spec_root: Term, base: Term
) -> _ChainState:
    impl_chain = decompose_chain(impl_root)
    spec_chain = decompose_chain(spec_root)
    if impl_chain.base is not base:
        raise RewriteFailed(
            f"implementation chain does not start at {name}",
            stage="decompose",
        )
    if spec_chain.base is not base:
        raise RewriteFailed(
            f"specification chain does not start at {name}",
            stage="decompose",
        )
    return _ChainState(
        name=name,
        working=list(impl_chain.items),
        spec_items=list(spec_chain.items),
        spec_chain=spec_chain,
    )


def _tally(rules_applied: Optional[Dict[str, int]], rule: str,
           count: int = 1) -> None:
    if rules_applied is not None and count:
        rules_applied[rule] = rules_applied.get(rule, 0) + count


def _entry_kind_flags(
    proc_vars: Dict[str, Expr], family: Family, entry: int
) -> Tuple[Formula, Formula, Formula]:
    """The prioritized (isb, isl, iss) kind flags of one initial entry."""
    raw_b = proc_vars[f"IsBranch{entry}"] if family.has_branches else FALSE
    raw_l = proc_vars[f"IsLoad{entry}"] if family.has_memory else FALSE
    raw_s = proc_vars[f"IsStore{entry}"] if family.has_memory else FALSE
    return kind_precedence(family, raw_b, raw_l, raw_s)


@dataclass
class _Located:
    """One entry's located-and-merged update on a single chain."""

    impl_data: Term
    flush_prev: Term
    spec_item: ChainItem
    spec_prev: Term
    removals: List[int]


def _locate_and_merge(
    entry: int,
    retire_width: int,
    chain: _ChainState,
    addr_node: Term,
    addr_desc: str,
    expected_context: Formula,
    rules_applied: Optional[Dict[str, int]],
) -> "_Located | RewriteFailure":
    """Rules 1–2 for one entry on one chain (no mutation yet)."""
    working, spec_items = chain.working, chain.spec_items
    positions = [i for i, item in enumerate(working) if item.addr is addr_node]
    expected = 2 if entry <= retire_width else 1
    if len(positions) != expected:
        return RewriteFailure(
            entry,
            "locate",
            f"expected {expected} {chain.name} update(s) to {addr_desc}, "
            f"found {len(positions)}",
        )
    if not spec_items:
        return RewriteFailure(
            entry, "locate", f"specification-side {chain.name} exhausted"
        )
    spec_item = spec_items[0]
    if spec_item.addr is not addr_node or spec_item.context is not expected_context:
        return RewriteFailure(
            entry,
            "locate",
            f"specification-side {chain.name} update does not have the "
            f"expected <context, {addr_desc}> form",
        )

    if entry <= retire_width:
        first_pos, second_pos = positions
        retire_item = working[first_pos]
        flush_item = working[second_pos]
        if first_pos != 0:
            return RewriteFailure(
                entry,
                "reorder",
                f"{chain.name} retirement update is not at the chain head",
            )
        # --- Rule 1: move the completion update down to the retirement ---
        for index in range(first_pos + 1, second_pos):
            between = working[index]
            if not contexts_disjoint(flush_item.context, between.context):
                return RewriteFailure(
                    entry,
                    "reorder",
                    f"{chain.name} completion update cannot move over the "
                    f"update to {getattr(between.addr, 'name', between.addr)}"
                    " — contexts overlap (in-order retirement violated?)",
                )
        _tally(rules_applied, "reorder", second_pos - first_pos - 1)
        # --- Rule 2: merge the complementary pair -------------------------
        merged = merge_contexts(retire_item.context, flush_item.context)
        if merged is None:
            return RewriteFailure(
                entry,
                "merge",
                f"{chain.name} retirement/completion contexts are not "
                "complementary",
            )
        merged_context, residual = merged
        if merged_context is not expected_context:
            return RewriteFailure(
                entry,
                "merge",
                f"merged {chain.name} context does not equal the "
                "specification-side context",
            )
        _tally(rules_applied, "merge")
        impl_data = builder.ite_term(residual, retire_item.data, flush_item.data)
        flush_prev = flush_item.prev_state
        removals = [first_pos, second_pos]
    else:
        (only_pos,) = positions
        flush_item = working[only_pos]
        if only_pos != 0:
            return RewriteFailure(
                entry,
                "reorder",
                f"{chain.name} completion update is not at the chain head",
            )
        if flush_item.context is not expected_context:
            return RewriteFailure(
                entry,
                "merge",
                f"{chain.name} completion context does not equal the "
                "specification-side context",
            )
        impl_data = flush_item.data
        flush_prev = flush_item.prev_state
        removals = [only_pos]

    return _Located(
        impl_data=impl_data,
        flush_prev=flush_prev,
        spec_item=spec_item,
        spec_prev=chain.spec_chain.state_after(entry - 1),
        removals=removals,
    )


def _process_entry(
    entry: int,
    retire_width: int,
    proc_vars: Dict[str, Expr],
    family: Family,
    chains: List[_ChainState],
    rules_applied: Optional[Dict[str, int]] = None,
) -> Optional[RewriteFailure]:
    """Rules 1–4 for one initial ROB entry across all chains."""
    valid_var = proc_vars[f"Valid{entry}"]
    vres_var = proc_vars[f"ValidResult{entry}"]
    dest_var = proc_vars[f"Dest{entry}"]
    op_var = proc_vars[f"Op{entry}"]
    result_var = proc_vars[f"Result{entry}"]
    isb, isl, iss = _entry_kind_flags(proc_vars, family, entry)

    # --- Locate and merge every chain's update pair (rules 1-2) ----------
    located: List[_Located] = []
    for chain in chains:
        if chain.name == "RegFile":
            addr_node, addr_desc = dest_var, f"Dest{entry}"
            expected_context = builder.and_(
                valid_var, writes_reg_file(isb, iss)
            )
        else:
            addr_node = builder.uf(MEM_ADDR, [op_var])
            addr_desc = f"MemAddr(Op{entry})"
            expected_context = builder.and_(valid_var, iss)
        outcome = _locate_and_merge(
            entry, retire_width, chain, addr_node, addr_desc,
            expected_context, rules_applied,
        )
        if isinstance(outcome, RewriteFailure):
            return outcome
        located.append(outcome)

    # Reads along the implementation side refer to the states before this
    # entry's completion; the already-proven prefix equivalence lets them
    # move to the specification-side states (rule 3, subcase 2.2).  A load
    # references the Data-Memory prefix and a store the Register-File one,
    # so the mapping covers the seam of *every* chain at once.
    mapping = {loc.flush_prev: loc.spec_prev for loc in located}
    stop = {loc.spec_prev for loc in located}

    # --- Rule 3: data equality by case split -----------------------------
    if family.has_memory:
        load_var = proc_vars[f"IsLoad{entry}"]
        store_var = proc_vars[f"IsStore{entry}"]
        # Under the Register-File context (valid AND writes-reg-file) the
        # store case is vacuous; under the Data-Memory context (valid AND
        # is-store) only the store case survives.
        rf_cases = [
            ({load_var: TRUE}, "load"),
            ({load_var: FALSE, store_var: FALSE}, "alu"),
        ]
        dmem_cases = [({load_var: FALSE, store_var: TRUE}, "store")]
    else:
        rf_cases = [({}, "alu")]
        dmem_cases = []

    for chain, loc in zip(chains, located):
        cases = rf_cases if chain.name == "RegFile" else dmem_cases
        failure = _prove_data_equal(
            entry,
            chain.name,
            loc.impl_data,
            loc.spec_item.data,
            mapping,
            stop,
            cases,
            valid_var,
            vres_var,
            result_var,
            rules_applied,
        )
        if failure is not None:
            return failure
        _tally(rules_applied, "data")

    # --- Rule 4: remove the proven-equal updates -------------------------
    for chain, loc in zip(chains, located):
        for index in sorted(loc.removals, reverse=True):
            del chain.working[index]
        del chain.spec_items[0]
        _tally(rules_applied, "remove", len(loc.removals) + 1)
    return None


def _prove_data_equal(
    entry: int,
    chain_name: str,
    impl_data: Term,
    spec_data: Term,
    mapping: Dict[Term, Term],
    stop: set,
    kind_cases: List[Tuple[Dict[BoolVar, Formula], str]],
    valid_var: BoolVar,
    vres_var: BoolVar,
    result_var: TermVar,
    rules_applied: Optional[Dict[str, int]] = None,
) -> Optional[RewriteFailure]:
    """Rule 3: the data written along both sides is equal under the
    merged context, by case split on ``ValidResult_i`` and (memory
    families) the entry's instruction-kind variables."""
    impl_data = substitute_opaque(impl_data, mapping)

    # Case 1: ValidResult_i — both sides must write the initial Result_i
    # (regardless of the instruction's kind).
    impl_true = reduce_under(
        impl_data, {vres_var: TRUE, valid_var: TRUE}, stop_nodes=stop
    )
    spec_true = reduce_under(
        spec_data, {vres_var: TRUE, valid_var: TRUE}, stop_nodes=stop
    )
    if impl_true is not result_var or spec_true is not result_var:
        return RewriteFailure(
            entry,
            "data",
            f"with ValidResult true, the {chain_name} data does not reduce "
            f"to Result{entry} on both sides",
        )

    # Case 2: NOT ValidResult_i — one sub-case per (non-vacuous) kind.
    for assignment, label in kind_cases:
        assumptions: Dict[BoolVar, Formula] = {
            vres_var: FALSE, valid_var: TRUE
        }
        assumptions.update(assignment)
        impl_false = reduce_under(impl_data, assumptions, stop_nodes=stop)
        spec_false = reduce_under(spec_data, assumptions, stop_nodes=stop)
        if impl_false is spec_false:
            continue
        # Subcase 2.1: the instruction may have executed during the regular
        # cycle; the implementation data is ITE(executed, computed-from-
        # forwarded-operands, same-as-specification).
        if not (
            isinstance(impl_false, TermITE)
            and impl_false.els is spec_false
        ):
            return RewriteFailure(
                entry,
                "data",
                f"with ValidResult false ({label} case), the {chain_name} "
                "data does not have the expected executed/completed ITE "
                "structure",
            )
        executed = impl_false.cond
        executed_conjuncts = (
            list(executed.args) if executed.kind == "and" else [executed]
        )
        computed = impl_false.then
        if (
            isinstance(computed, UFApp)
            and computed.symbol == ALU
            and isinstance(spec_false, UFApp)
            and spec_false.symbol == ALU
            and len(computed.args) == len(spec_false.args) == 3
            and computed.args[0] is spec_false.args[0]
        ):
            # ALU instruction: each operand's forwarding chain must match
            # the specification-side register read; congruence closes the
            # ALU application.
            targets = [
                (computed.args[operand], spec_false.args[operand],
                 f"operand {operand}")
                for operand in (1, 2)
                if computed.args[operand] is not spec_false.args[operand]
            ]
        else:
            # Load value or store data: the whole computed term is one
            # forwarding chain against one specification-side read.
            targets = [(computed, spec_false, f"{label} data")]
        for forwarded, spec_read, desc in targets:
            # The specification side reads from the previous chain state;
            # push the read through the chain so it mirrors the forwarding
            # chain (identical guards by construction).
            spec_read = push_read(spec_read)
            proved = False
            last_violation = "no availability condition found in execute guard"
            for candidate in executed_conjuncts:
                try:
                    prove_forwarding_matches_read(
                        forwarded, spec_read, candidate
                    )
                    proved = True
                    _tally(rules_applied, "forwarding")
                    break
                except RuleViolation as exc:
                    last_violation = str(exc)
            if not proved:
                return RewriteFailure(
                    entry,
                    "data",
                    f"{chain_name} {desc} forwarding does not match the "
                    f"specification-side read: {last_violation}",
                )
    return None


def _build_reduced_formula(
    artifacts: DiagramArtifacts, criterion: str, result: RewriteResult
) -> Formula:
    """Rebuild the correctness formula over the fresh equal-state variables.

    The proven-equal update prefixes (everything done by instructions
    initially in the ROB) are replaced by the same fresh variable on both
    sides — ``RegFile_equal_state`` and, for memory families,
    ``DMem_equal_state``; the result depends only on the newly fetched
    instructions.
    """
    family = artifacts.config.family_spec
    counter = next(_fresh_counter)
    fresh_rf = builder.tvar(f"RegFile_equal_state{counter}")
    impl_map: Dict[Term, Term] = {artifacts.rf_impl_mid: fresh_rf}
    spec_map: Dict[Term, Term] = {artifacts.spec_states[0].reg_file: fresh_rf}
    if family.has_memory:
        fresh_dmem = builder.tvar(f"DMem_equal_state{counter}")
        impl_map[artifacts.dmem_impl_mid] = fresh_dmem
        spec_map[artifacts.spec_states[0].dmem] = fresh_dmem

    rf_impl = substitute_opaque(artifacts.rf_impl, impl_map)
    spec_rfs = [
        substitute_opaque(state.reg_file, spec_map)
        for state in artifacts.spec_states
    ]
    result.reduced_rf_impl = rf_impl
    result.reduced_spec_rfs = spec_rfs
    dmem_impl = None
    spec_dmems: List[Term] = []
    if family.has_memory:
        dmem_impl = substitute_opaque(artifacts.dmem_impl, impl_map)
        spec_dmems = [
            substitute_opaque(state.dmem, spec_map)
            for state in artifacts.spec_states
        ]
        result.reduced_dmem_impl = dmem_impl
        result.reduced_spec_dmems = spec_dmems

    conjuncts = []
    for m, (spec_state, spec_rf) in enumerate(
        zip(artifacts.spec_states, spec_rfs)
    ):
        equal_pc = builder.eq(artifacts.pc_impl, spec_state.pc)
        equal_rf = builder.eq(rf_impl, spec_rf)
        parts = [equal_pc, equal_rf]
        if family.has_memory:
            parts.append(builder.eq(dmem_impl, spec_dmems[m]))
        conjuncts.append(builder.and_(*parts))

    if criterion == "disjunction":
        result.reduced_formula = builder.or_(*conjuncts)
        return result.reduced_formula
    if criterion != "case_split":
        raise ValueError(f"unknown criterion {criterion!r}")
    fetch = artifacts.fetch_conditions
    k = artifacts.config.issue_width
    cases = []
    for m in range(k + 1):
        at_least = TRUE if m == 0 else fetch[m - 1]
        more = fetch[m] if m < k else FALSE
        exactly = builder.and_(at_least, builder.not_(more))
        cases.append(builder.implies(exactly, conjuncts[m]))
    result.reduced_formula = builder.and_(*cases)
    return result.reduced_formula
