"""The rewriting engine: proving the instructions initially in the ROB
produce equal updates along both sides of the commutative diagram.

Processing order follows Sect. 6: front of the ROB first.  For every
initial entry ``i`` the engine

1. locates the entry's updates on the implementation side — two for an
   instruction within the retire width (retirement during the regular
   cycle, completion during flushing), one otherwise;
2. checks the reordering side conditions (rule 1) against every update
   standing between them — structural disjointness from in-order
   retirement;
3. merges the pair (rule 2): contexts ``Valid_i AND retire_i`` and
   ``Valid_i AND NOT retire_i`` combine under ``Valid_i``, matching the
   specification side's context;
4. proves the written data equal (rule 3) by a case split on
   ``ValidResult_i`` with structural reduction, including the
   forwarding-versus-specification-read chain walk for operands of
   instructions executed during the regular cycle;
5. removes the proven pair from both sides (rule 4).

A slice that does not conform is reported as a potential bug with its
entry number — the paper's 72nd-slice experiment.  After all ``N`` initial
entries are processed, the correctness formula is rebuilt over a fresh
``RegFile_equal_state`` variable and depends only on the newly fetched
instructions; it is discharged by Positive Equality with the conservative
memory abstraction (no ``e_ij`` variables — Table 5).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import RewriteFailed
from ..eufm import builder
from ..guard.deadline import current_deadline
from ..eufm.ast import (
    FALSE,
    TRUE,
    BoolVar,
    Expr,
    Formula,
    Term,
    TermITE,
    TermVar,
    UFApp,
)
from ..eufm.memory import push_read
from ..obs.tracer import current_tracer
from ..processor.correctness import DiagramArtifacts
from ..processor.isa import ALU
from .rules import (
    RuleViolation,
    contexts_disjoint,
    merge_contexts,
    prove_forwarding_matches_read,
    reduce_under,
    substitute_opaque,
)
from .updates import ChainItem, UpdateChain, decompose_chain

__all__ = ["RewriteFailure", "RewriteResult", "rewrite_diagram"]

_fresh_counter = itertools.count(1)


@dataclass(frozen=True)
class RewriteFailure:
    """A computation slice that did not conform to the expected structure."""

    entry: int
    stage: str  # "locate" | "reorder" | "merge" | "data"
    detail: str

    def describe(self) -> str:
        return f"slice {self.entry} failed at {self.stage}: {self.detail}"


@dataclass
class RewriteResult:
    """Outcome of applying the rewriting rules to a simulated diagram."""

    artifacts: DiagramArtifacts
    proved_entries: List[int] = field(default_factory=list)
    failure: Optional[RewriteFailure] = None
    #: the simplified correctness formula (None when a slice failed).
    reduced_formula: Optional[Formula] = None
    #: the implementation-side Register File over ``RegFile_equal_state``.
    reduced_rf_impl: Optional[Term] = None
    #: the specification-side Register Files (0..k steps) over the same
    #: fresh variable.
    reduced_spec_rfs: List[Term] = field(default_factory=list)
    #: how many times each rule fired, keyed by rule name — the tally
    #: journaled by campaigns and reported by ``repro lint``.
    rules_applied: Dict[str, int] = field(default_factory=dict)
    rewrite_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.failure is None


def rewrite_diagram(
    artifacts: DiagramArtifacts, criterion: str = "disjunction"
) -> RewriteResult:
    """Apply the Sect. 6 rewriting rules to the diagram's update sequences.

    Recorded as a ``"rewrite"`` span on the ambient tracer, carrying the
    per-rule firing counts and the number of entries proved/removed.
    """
    with current_tracer().span("rewrite") as span:
        result = _rewrite_diagram(artifacts, criterion)
        for rule, count in result.rules_applied.items():
            span.add(f"rewrite.rule.{rule}", count)
        span.add("rewrite.entries_proved", len(result.proved_entries))
        span.add(
            "rewrite.updates_removed", result.rules_applied.get("remove", 0)
        )
        span.add("rewrite.passes", 1)
        span.set("rewrite.succeeded", 1.0 if result.succeeded else 0.0)
        return result


def _rewrite_diagram(
    artifacts: DiagramArtifacts, criterion: str
) -> RewriteResult:
    start = time.perf_counter()
    result = RewriteResult(artifacts=artifacts)
    config = artifacts.config
    n, l = config.n_rob, config.retire_width
    proc_vars = artifacts.proc.vars

    impl_chain = decompose_chain(artifacts.rf_impl)
    spec_chain = decompose_chain(artifacts.spec_states[0].reg_file)
    if impl_chain.base is not artifacts.initial_rf:
        raise RewriteFailed(
            "implementation chain does not start at RegFile",
            stage="decompose",
        )
    if spec_chain.base is not artifacts.initial_rf:
        raise RewriteFailed(
            "specification chain does not start at RegFile",
            stage="decompose",
        )

    working: List[ChainItem] = list(impl_chain.items)
    spec_items: List[ChainItem] = list(spec_chain.items)

    deadline = current_deadline()
    for entry in range(1, n + 1):
        deadline.check("rewrite")
        failure = _process_entry(
            entry, l, proc_vars, working, spec_items, spec_chain,
            result.rules_applied,
        )
        if failure is not None:
            result.failure = failure
            result.rewrite_seconds = time.perf_counter() - start
            return result
        result.proved_entries.append(entry)

    if spec_items:
        result.failure = RewriteFailure(
            entry=0,
            stage="locate",
            detail=f"{len(spec_items)} unmatched specification-side updates",
        )
        result.rewrite_seconds = time.perf_counter() - start
        return result

    _build_reduced_formula(artifacts, criterion, result)
    result.rewrite_seconds = time.perf_counter() - start
    return result


def _tally(rules_applied: Optional[Dict[str, int]], rule: str,
           count: int = 1) -> None:
    if rules_applied is not None and count:
        rules_applied[rule] = rules_applied.get(rule, 0) + count


def _process_entry(
    entry: int,
    retire_width: int,
    proc_vars: Dict[str, Expr],
    working: List[ChainItem],
    spec_items: List[ChainItem],
    spec_chain: UpdateChain,
    rules_applied: Optional[Dict[str, int]] = None,
) -> Optional[RewriteFailure]:
    """Rules 1–4 for one initial ROB entry; mutates the working lists."""
    valid_var = proc_vars[f"Valid{entry}"]
    vres_var = proc_vars[f"ValidResult{entry}"]
    dest_var = proc_vars[f"Dest{entry}"]
    result_var = proc_vars[f"Result{entry}"]

    # --- Locate ---------------------------------------------------------
    positions = [i for i, item in enumerate(working) if item.addr is dest_var]
    expected = 2 if entry <= retire_width else 1
    if len(positions) != expected:
        return RewriteFailure(
            entry,
            "locate",
            f"expected {expected} update(s) to Dest{entry}, "
            f"found {len(positions)}",
        )
    if not spec_items:
        return RewriteFailure(entry, "locate", "specification side exhausted")
    spec_item = spec_items[0]
    if spec_item.addr is not dest_var or spec_item.context is not valid_var:
        return RewriteFailure(
            entry,
            "locate",
            "specification-side update does not have the expected "
            f"<Valid{entry}, Dest{entry}> form",
        )

    if entry <= retire_width:
        first_pos, second_pos = positions
        retire_item = working[first_pos]
        flush_item = working[second_pos]
        if first_pos != 0:
            return RewriteFailure(
                entry, "reorder", "retirement update is not at the chain head"
            )
        # --- Rule 1: move the completion update down to the retirement ---
        for index in range(first_pos + 1, second_pos):
            between = working[index]
            if not contexts_disjoint(flush_item.context, between.context):
                return RewriteFailure(
                    entry,
                    "reorder",
                    f"completion update cannot move over the update to "
                    f"{getattr(between.addr, 'name', between.addr)} — "
                    "contexts overlap (in-order retirement violated?)",
                )
        _tally(rules_applied, "reorder", second_pos - first_pos - 1)
        # --- Rule 2: merge the complementary pair -------------------------
        merged = merge_contexts(retire_item.context, flush_item.context)
        if merged is None:
            return RewriteFailure(
                entry,
                "merge",
                "retirement/completion contexts are not complementary",
            )
        merged_context, residual = merged
        if merged_context is not valid_var:
            return RewriteFailure(
                entry,
                "merge",
                f"merged context is not Valid{entry}",
            )
        _tally(rules_applied, "merge")
        impl_data = builder.ite_term(residual, retire_item.data, flush_item.data)
        flush_prev = flush_item.prev_state
        removals = [first_pos, second_pos]
    else:
        (only_pos,) = positions
        flush_item = working[only_pos]
        if only_pos != 0:
            return RewriteFailure(
                entry, "reorder", "completion update is not at the chain head"
            )
        if flush_item.context is not valid_var:
            return RewriteFailure(
                entry,
                "merge",
                f"completion context is not Valid{entry}",
            )
        impl_data = flush_item.data
        flush_prev = flush_item.prev_state
        removals = [only_pos]

    # --- Rule 3: data equality by case split on ValidResult -------------
    spec_prev = spec_chain.state_after(entry - 1)
    failure = _prove_data_equal(
        entry,
        impl_data,
        spec_item.data,
        flush_prev,
        spec_prev,
        valid_var,
        vres_var,
        result_var,
        rules_applied,
    )
    if failure is not None:
        return failure
    _tally(rules_applied, "data")

    # --- Rule 4: remove the proven-equal updates -------------------------
    for index in sorted(removals, reverse=True):
        del working[index]
    del spec_items[0]
    _tally(rules_applied, "remove", len(removals) + 1)
    return None


def _prove_data_equal(
    entry: int,
    impl_data: Term,
    spec_data: Term,
    flush_prev: Term,
    spec_prev: Term,
    valid_var: BoolVar,
    vres_var: BoolVar,
    result_var: TermVar,
    rules_applied: Optional[Dict[str, int]] = None,
) -> Optional[RewriteFailure]:
    """Rule 3: the data written along both sides is equal under Valid_i."""
    # Reads along the implementation side refer to the state before this
    # entry's completion; the already-proven prefix equivalence lets them
    # move to the specification-side state (rule 3, subcase 2.2).
    impl_data = substitute_opaque(impl_data, {flush_prev: spec_prev})
    stop = {spec_prev}

    # Case 1: ValidResult_i — both sides must write the initial Result_i.
    impl_true = reduce_under(
        impl_data, {vres_var: TRUE, valid_var: TRUE}, stop_nodes=stop
    )
    spec_true = reduce_under(
        spec_data, {vres_var: TRUE, valid_var: TRUE}, stop_nodes=stop
    )
    if impl_true is not result_var or spec_true is not result_var:
        return RewriteFailure(
            entry,
            "data",
            "with ValidResult true, the written data does not reduce to "
            f"Result{entry} on both sides",
        )

    # Case 2: NOT ValidResult_i — the specification side computes the ALU
    # result from operands read from the previous Register-File state.
    impl_false = reduce_under(
        impl_data, {vres_var: FALSE, valid_var: TRUE}, stop_nodes=stop
    )
    spec_false = reduce_under(
        spec_data, {vres_var: FALSE, valid_var: TRUE}, stop_nodes=stop
    )
    if impl_false is spec_false:
        return None
    # Subcase 2.1: the instruction may have executed during the regular
    # cycle; the implementation data is ITE(executed, ALU(forwarded ops),
    # ALU(ops read from the previous state)).
    if not (
        isinstance(impl_false, TermITE)
        and impl_false.els is spec_false
        and isinstance(impl_false.then, UFApp)
        and impl_false.then.symbol == ALU
        and isinstance(spec_false, UFApp)
        and spec_false.symbol == ALU
        and len(impl_false.then.args) == len(spec_false.args) == 3
        and impl_false.then.args[0] is spec_false.args[0]
    ):
        return RewriteFailure(
            entry,
            "data",
            "with ValidResult false, the implementation data does not have "
            "the expected executed/completed ITE structure",
        )
    executed = impl_false.cond
    executed_conjuncts = (
        list(executed.args) if executed.kind == "and" else [executed]
    )
    for operand in (1, 2):
        forwarded = impl_false.then.args[operand]
        spec_read = spec_false.args[operand]
        if forwarded is spec_read:
            continue
        # The specification side reads from the previous chain state; push
        # the read through the chain so it mirrors the forwarding chain
        # (identical guards by construction).
        spec_read = push_read(spec_read)
        proved = False
        last_violation = "no availability condition found in execute guard"
        for candidate in executed_conjuncts:
            try:
                prove_forwarding_matches_read(forwarded, spec_read, candidate)
                proved = True
                _tally(rules_applied, "forwarding")
                break
            except RuleViolation as exc:
                last_violation = str(exc)
        if not proved:
            return RewriteFailure(
                entry,
                "data",
                f"operand {operand} forwarding does not match the "
                f"specification-side read: {last_violation}",
            )
    return None


def _build_reduced_formula(
    artifacts: DiagramArtifacts, criterion: str, result: RewriteResult
) -> Formula:
    """Rebuild the correctness formula over ``RegFile_equal_state``.

    The proven-equal update prefixes (everything done by instructions
    initially in the ROB) are replaced by the same fresh variable on both
    sides; the result depends only on the newly fetched instructions.
    """
    fresh = builder.tvar(f"RegFile_equal_state{next(_fresh_counter)}")
    rf_impl = substitute_opaque(
        artifacts.rf_impl, {artifacts.rf_impl_mid: fresh}
    )
    spec_base = artifacts.spec_states[0].reg_file
    spec_rfs = [
        substitute_opaque(state.reg_file, {spec_base: fresh})
        for state in artifacts.spec_states
    ]
    result.reduced_rf_impl = rf_impl
    result.reduced_spec_rfs = spec_rfs

    conjuncts = []
    for spec_state, spec_rf in zip(artifacts.spec_states, spec_rfs):
        equal_pc = builder.eq(artifacts.pc_impl, spec_state.pc)
        equal_rf = builder.eq(rf_impl, spec_rf)
        conjuncts.append(builder.and_(equal_pc, equal_rf))

    if criterion == "disjunction":
        result.reduced_formula = builder.or_(*conjuncts)
        return result.reduced_formula
    if criterion != "case_split":
        raise ValueError(f"unknown criterion {criterion!r}")
    fetch = artifacts.fetch_conditions
    k = artifacts.config.issue_width
    cases = []
    for m in range(k + 1):
        at_least = TRUE if m == 0 else fetch[m - 1]
        more = fetch[m] if m < k else FALSE
        exactly = builder.and_(at_least, builder.not_(more))
        cases.append(builder.implies(exactly, conjuncts[m]))
    result.reduced_formula = builder.and_(*cases)
    return result.reduced_formula
