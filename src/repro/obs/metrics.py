"""Metrics registry, snapshots, and the perf-regression comparator.

A :class:`MetricsRegistry` is a thread-safe flat store of counters and
gauges keyed by stage-qualified names (``"sat.conflicts"``,
``"encode.eij_primary"``).  A :class:`MetricsSnapshot` is its frozen,
JSON-serializable form — the unit of the perf trajectory: benchmarks
write ``BENCH_*.json`` snapshots, campaigns journal one per job, and
``python -m repro perf record``/``compare`` turn two snapshots into a
regression verdict.

:func:`snapshot_from_result` flattens a
:class:`~repro.core.results.VerificationResult` (phase timings, CNF
statistics, SAT counters, rewrite-rule firing counts, and — when the run
was traced — every span counter) into one snapshot.  It duck-types the
result object so it also works on the stub results used by campaign
tests.

:func:`compare_snapshots` checks a current snapshot against a baseline
under per-metric tolerances.  Tolerances are matched by ``fnmatch``
pattern, first match wins; counts default to exact.  Only *increases*
fail the gate — getting faster or smaller is never a regression.

Timing metrics are split by clock.  CPU-time metrics (``cpu.*``,
``*cpu_seconds*``) gate with a generous relative slack: CPU time is what
the work actually costs and barely moves when a CI runner is loaded or
the campaign runs with ``--workers N``.  Wall-clock metrics
(``timings.*`` and other ``*seconds*``) are **advisory-only** by default:
an exceedance is reported in the comparison table but never fails the
gate, because wall clocks regress spuriously on loaded runners and under
process parallelism.

:func:`merge_snapshots` sums several snapshots into one — the parent
side of a parallel campaign merges each worker's shipped snapshot this
way, and benchmark sweeps aggregate per-job snapshots into a suite total.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tolerance",
    "MetricDelta",
    "ComparisonReport",
    "DEFAULT_TOLERANCES",
    "snapshot_from_result",
    "merge_snapshots",
    "compare_snapshots",
]


class MetricsRegistry:
    """Thread-safe counters and gauges keyed by stage-qualified name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, float] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto the counter ``name``."""
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Overwrite the gauge ``name`` with ``value``."""
        with self._lock:
            self._values[name] = float(value)

    def merge(self, metrics: Mapping[str, float]) -> None:
        """Accumulate a whole mapping (e.g. a span's counters)."""
        with self._lock:
            for name, value in metrics.items():
                self._values[name] = self._values.get(name, 0.0) + value

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def values(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._values)

    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> "MetricsSnapshot":
        return MetricsSnapshot(metrics=self.values(), meta=dict(meta or {}))


@dataclass
class MetricsSnapshot:
    """A frozen set of metric values plus free-form metadata."""

    metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"meta": dict(self.meta), "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        metrics = {
            str(k): float(v) for k, v in data.get("metrics", {}).items()
        }
        return cls(metrics=metrics, meta=dict(data.get("meta", {})))

    def save(self, path) -> None:
        """Write the snapshot as pretty-printed, sorted JSON."""
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "MetricsSnapshot":
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def snapshot_from_result(result, meta: Optional[Dict[str, Any]] = None) -> MetricsSnapshot:
    """Flatten a verification result into one :class:`MetricsSnapshot`.

    Works on any object shaped like
    :class:`~repro.core.results.VerificationResult`; absent attributes
    simply contribute no metrics.
    """
    metrics: Dict[str, float] = {}

    for phase, seconds in (getattr(result, "timings", None) or {}).items():
        metrics[f"timings.{phase}"] = float(seconds)

    stats = getattr(result, "encoding_stats", None)
    if stats is not None:
        for name, value in stats.as_row().items():
            metrics[f"encode.{name}"] = float(value)

    validity = getattr(result, "validity", None)
    sat = getattr(validity, "sat_result", None) if validity else None
    if sat is not None:
        for name in (
            "decisions",
            "conflicts",
            "propagations",
            "restarts",
            "learned_clauses",
            "max_decision_level",
        ):
            metrics[f"sat.{name}"] = float(getattr(sat, name, 0))
        metrics["sat.cpu_seconds"] = float(getattr(sat, "cpu_seconds", 0.0))

    rewrite = getattr(result, "rewrite", None)
    if rewrite is not None:
        for rule, count in (getattr(rewrite, "rules_applied", None) or {}).items():
            metrics[f"rewrite.rule.{rule}"] = float(count)
        proved = getattr(rewrite, "proved_entries", None)
        if proved is not None:
            metrics["rewrite.entries_proved"] = float(len(proved))

    trace = getattr(result, "trace", None)
    if trace is not None:
        # CPU-time mirror of the wall-clock ``timings.*`` phases: the
        # values the perf gate actually gates on (wall is advisory).
        metrics["cpu.total"] = float(trace.cpu_seconds)
        for child in trace.children:
            metrics[f"cpu.{child.name}"] = float(child.cpu_seconds)
        for counter, value in trace.all_counters().items():
            metrics.setdefault(f"trace.{counter}", float(value))

    snapshot_meta: Dict[str, Any] = {}
    config = getattr(result, "config", None)
    if config is not None:
        snapshot_meta["config"] = getattr(config, "describe", lambda: str(config))()
    method = getattr(result, "method", None)
    if method is not None:
        snapshot_meta["method"] = method
    correct = getattr(result, "correct", None)
    if correct is not None:
        snapshot_meta["correct"] = bool(correct)
    snapshot_meta.update(meta or {})
    return MetricsSnapshot(metrics=metrics, meta=snapshot_meta)


def merge_snapshots(
    snapshots: Sequence[MetricsSnapshot],
    meta: Optional[Dict[str, Any]] = None,
) -> MetricsSnapshot:
    """Sum several snapshots into one.

    Metric values are added (they are counters and durations, both of
    which aggregate by summation); ``meta`` of the result is the given
    ``meta`` plus a ``merged_from`` count.  The parent of a parallel
    campaign merges worker-shipped snapshots this way.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot.metrics)
    merged_meta: Dict[str, Any] = {"merged_from": len(snapshots)}
    merged_meta.update(meta or {})
    return registry.snapshot(meta=merged_meta)


@dataclass(frozen=True)
class Tolerance:
    """Allowed *increase* of a metric: relative fraction plus absolute slack.

    ``current`` passes while ``current <= baseline * (1 + rel) + abs``.
    An ``advisory`` tolerance never fails the gate: an exceedance is
    reported in the comparison table (so the trend stays visible) but the
    overall verdict ignores it — the treatment wall-clock metrics get,
    since they regress spuriously on loaded machines.
    """

    rel: float = 0.0
    abs: float = 0.0
    advisory: bool = False

    def limit(self, baseline: float) -> float:
        return baseline * (1.0 + self.rel) + self.abs

    def describe(self) -> str:
        text = f"rel:{self.rel:g}+abs:{self.abs:g}"
        return f"{text}, advisory" if self.advisory else text


#: Pattern-ordered default tolerances.  CPU time is what the work costs
#: and is stable under machine load, so ``cpu.*``/``*cpu_seconds*`` gate
#: (generously — schedulers still jitter thread time a little).  Wall
#: clocks regress spuriously on loaded runners and under ``--workers``,
#: so ``timings.*``/``*seconds*`` are advisory-only.  Structural counts
#: are deterministic and must not grow silently.
DEFAULT_TOLERANCES: Tuple[Tuple[str, Tolerance], ...] = (
    ("cpu.*", Tolerance(rel=10.0, abs=0.5)),
    ("*cpu_seconds*", Tolerance(rel=10.0, abs=0.5)),
    ("timings.*", Tolerance(rel=10.0, abs=0.5, advisory=True)),
    ("*seconds*", Tolerance(rel=10.0, abs=0.5, advisory=True)),
    ("*", Tolerance(rel=0.0, abs=0.0)),
)


@dataclass
class MetricDelta:
    """Verdict for one metric of the comparison."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: Optional[Tolerance]
    regressed: bool
    note: str = ""

    def render_row(self) -> Tuple[str, str, str, str, str]:
        fmt = lambda v: "-" if v is None else f"{v:g}"
        status = "FAIL" if self.regressed else "ok"
        detail = self.note or (
            self.tolerance.describe() if self.tolerance else ""
        )
        return (self.name, fmt(self.baseline), fmt(self.current), status, detail)


@dataclass
class ComparisonReport:
    """Outcome of comparing a current snapshot against a baseline."""

    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, only_failures: bool = False) -> str:
        from ..core.reporting import render_rows

        shown = self.regressions if only_failures else self.deltas
        verdict = (
            "no regressions"
            if self.ok
            else f"{len(self.regressions)} regression(s)"
        )
        if not shown:
            return f"perf compare: {verdict}"
        return render_rows(
            f"perf compare: {verdict}",
            ("metric", "baseline", "current", "status", "detail"),
            [delta.render_row() for delta in shown],
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "regressions": [delta.name for delta in self.regressions],
            "deltas": [
                {
                    "name": delta.name,
                    "baseline": delta.baseline,
                    "current": delta.current,
                    "regressed": delta.regressed,
                    "note": delta.note,
                }
                for delta in self.deltas
            ],
        }


def _tolerance_for(
    name: str, rules: Sequence[Tuple[str, Tolerance]]
) -> Tolerance:
    for pattern, tolerance in rules:
        if fnmatchcase(name, pattern):
            return tolerance
    return Tolerance()


def compare_snapshots(
    baseline: MetricsSnapshot,
    current: MetricsSnapshot,
    rules: Optional[Sequence[Tuple[str, Tolerance]]] = None,
) -> ComparisonReport:
    """Compare ``current`` against ``baseline`` under tolerance ``rules``.

    Rules are ``(fnmatch pattern, Tolerance)`` pairs checked in order;
    the first match wins.  A metric present in the baseline but missing
    from the current run is a regression (instrumentation was lost); a
    metric new in the current run is informational only.
    """
    if rules is None:
        rules = DEFAULT_TOLERANCES
    report = ComparisonReport()
    for name in sorted(set(baseline.metrics) | set(current.metrics)):
        base_value = baseline.metrics.get(name)
        cur_value = current.metrics.get(name)
        tolerance = _tolerance_for(name, rules)
        if base_value is None:
            report.deltas.append(
                MetricDelta(name, None, cur_value, tolerance, False, "new metric")
            )
            continue
        if cur_value is None:
            report.deltas.append(
                MetricDelta(
                    name, base_value, None, tolerance, True, "metric disappeared"
                )
            )
            continue
        limit = tolerance.limit(base_value)
        exceeded = cur_value > limit
        regressed = exceeded and not tolerance.advisory
        note = ""
        if exceeded:
            note = f"limit {limit:g} ({tolerance.describe()})"
            if tolerance.advisory:
                note = f"advisory: exceeded {note}"
        report.deltas.append(
            MetricDelta(name, base_value, cur_value, tolerance, regressed, note)
        )
    return report
