"""``python -m repro perf`` and ``python -m repro trace`` — the
observability CLI.

``perf record`` runs one traced verification and writes its
:class:`~repro.obs.metrics.MetricsSnapshot`; ``perf compare`` checks a
current snapshot against a committed baseline under per-metric
tolerances — the perf-regression gate used by CI::

    python -m repro perf record --rob 4 --width 2 --out current.json \
        --trace-out trace.json
    python -m repro perf compare benchmarks/baselines/perf_smoke.json \
        current.json --tol "timings.*=rel:25" --default-rel 0.5

``trace`` runs one traced verification and prints the span tree (or the
JSON / Chrome trace-event form)::

    python -m repro trace --rob 4 --width 2
    python -m repro trace --rob 8 --width 4 --format chrome --out t.json

Exit status: ``perf compare`` returns 0 when every metric is within
tolerance and 1 otherwise; ``record``/``trace`` mirror the single-run
CLI (0 proved, 1 bug found) and use 2 for setup errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from ..errors import ReproError
from .metrics import (
    DEFAULT_TOLERANCES,
    MetricsSnapshot,
    Tolerance,
    compare_snapshots,
    snapshot_from_result,
)
from .exporters import (
    metrics_to_csv,
    render_span_tree,
    trace_to_chrome,
    trace_to_json,
)

__all__ = ["perf_main", "trace_main"]


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rob", type=int, default=4,
                        help="reorder-buffer size N (default 4)")
    parser.add_argument("--width", type=int, default=2,
                        help="issue width k (default 2)")
    parser.add_argument(
        "--method",
        choices=("rewriting", "positive_equality"),
        default="rewriting",
    )
    parser.add_argument(
        "--criterion",
        choices=("disjunction", "case_split"),
        default="disjunction",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="run under a pipeline-wide wall-clock deadline; guard "
        "activity shows up as guard.* counters on the trace",
    )
    parser.add_argument(
        "--max-memory", type=float, default=None, metavar="MB",
        help="run under a cooperative memory budget (see --deadline)",
    )


def _run_traced(args: argparse.Namespace):
    from ..core import verify
    from ..processor.params import ProcessorConfig

    config = ProcessorConfig(n_rob=args.rob, issue_width=args.width)
    return verify(
        config, method=args.method, criterion=args.criterion, trace=True,
        max_wall_seconds=args.deadline, max_memory_mb=args.max_memory,
    )


def _parse_tolerance(text: str) -> Tuple[str, Tolerance]:
    """Parse ``PATTERN=rel:R[+abs:A][+advisory]`` specs.

    ``advisory`` marks the pattern's metrics as report-only: exceedances
    are listed but never fail the gate (the wall-clock treatment).
    """
    if "=" not in text:
        raise ValueError(
            f"bad --tol {text!r}; expected PATTERN=rel:R[+abs:A][+advisory]"
        )
    pattern, spec = text.split("=", 1)
    tokens = [t for t in spec.replace("+", ":").split(":") if t.strip()]
    advisory = False
    while "advisory" in tokens:
        tokens.remove("advisory")
        advisory = True
    if len(tokens) % 2 != 0:
        raise ValueError(f"bad --tol {text!r}; expected rel:R and/or abs:A")
    rel, absolute = 0.0, 0.0
    for key, value in zip(tokens[::2], tokens[1::2]):
        if key == "rel":
            rel = float(value)
        elif key == "abs":
            absolute = float(value)
        else:
            raise ValueError(f"bad --tol key {key!r}; use rel/abs/advisory")
    return pattern, Tolerance(rel=rel, abs=absolute, advisory=advisory)


def build_perf_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Record and compare perf-metric snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run one traced verification and save its metrics"
    )
    _add_run_options(record)
    record.add_argument(
        "--out", default="perf_snapshot.json", metavar="FILE",
        help="where to write the MetricsSnapshot JSON",
    )
    record.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write the run's Chrome trace-event JSON here",
    )
    record.add_argument(
        "--csv-out", default=None, metavar="FILE",
        help="also write the metrics as CSV rows here",
    )

    compare = sub.add_parser(
        "compare", help="compare a current snapshot against a baseline"
    )
    compare.add_argument("baseline", help="baseline MetricsSnapshot JSON")
    compare.add_argument("current", help="current MetricsSnapshot JSON")
    compare.add_argument(
        "--tol", action="append", default=[], metavar="PATTERN=rel:R[+abs:A]",
        help="per-metric tolerance override (first match wins; repeatable)",
    )
    compare.add_argument(
        "--default-rel", type=float, default=None, metavar="R",
        help="override the default relative tolerance for counts",
    )
    compare.add_argument(
        "--default-abs", type=float, default=None, metavar="A",
        help="override the default absolute tolerance for counts",
    )
    compare.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    compare.add_argument(
        "--all", action="store_true",
        help="list every metric, not only regressions",
    )
    return parser


def perf_main(argv: Optional[List[str]] = None) -> int:
    args = build_perf_parser().parse_args(argv)
    if args.command == "record":
        return _perf_record(args)
    return _perf_compare(args)


def _perf_record(args: argparse.Namespace) -> int:
    try:
        result = _run_traced(args)
    except ReproError as exc:
        print(f"perf record failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2
    snapshot = snapshot_from_result(result)
    snapshot.save(args.out)
    print(f"recorded {len(snapshot.metrics)} metrics -> {args.out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace_to_chrome(result.trace), handle)
        print(f"chrome trace -> {args.trace_out}")
    if args.csv_out:
        with open(args.csv_out, "w", encoding="utf-8") as handle:
            handle.write(metrics_to_csv(snapshot))
        print(f"csv metrics -> {args.csv_out}")
    return 0 if result.correct else 1


def _perf_compare(args: argparse.Namespace) -> int:
    try:
        baseline = MetricsSnapshot.load(args.baseline)
        current = MetricsSnapshot.load(args.current)
        overrides = [_parse_tolerance(text) for text in args.tol]
    except (OSError, ValueError) as exc:
        print(f"perf compare error: {exc}", file=sys.stderr)
        return 2
    rules = list(overrides) + list(DEFAULT_TOLERANCES)
    if args.default_rel is not None or args.default_abs is not None:
        fallback = Tolerance(
            rel=args.default_rel or 0.0, abs=args.default_abs or 0.0
        )
        # Replace the catch-all default while keeping the timing rules.
        rules = [rule for rule in rules if rule[0] != "*"]
        rules.append(("*", fallback))
    report = compare_snapshots(baseline, current, rules=rules)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(only_failures=not args.all))
    return 0 if report.ok else 1


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one traced verification and export its span tree."
        ),
    )
    _add_run_options(parser)
    parser.add_argument(
        "--format", choices=("tree", "json", "chrome"), default="tree",
        help="output format (default: human-readable tree)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    return parser


def trace_main(argv: Optional[List[str]] = None) -> int:
    args = build_trace_parser().parse_args(argv)
    try:
        result = _run_traced(args)
    except ReproError as exc:
        print(f"trace failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.format == "tree":
        text = render_span_tree(result.trace)
    elif args.format == "json":
        text = trace_to_json(result.trace)
    else:
        text = json.dumps(trace_to_chrome(result.trace))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"trace -> {args.out}")
    else:
        print(text)
    return 0 if result.correct else 1
