"""``repro.obs`` — tracing, metrics, and perf-regression observability.

The measurement substrate for the whole verification pipeline:

* :mod:`repro.obs.tracer` — hierarchical span tracer (wall + CPU time,
  per-span counters, thread-safe) with an allocation-free
  :class:`~repro.obs.tracer.NullTracer` so instrumented hot paths cost
  nothing when tracing is off;
* :mod:`repro.obs.metrics` — metrics registry, JSON snapshots, and the
  tolerance-based snapshot comparator behind ``python -m repro perf``;
* :mod:`repro.obs.exporters` — span-tree text rendering, JSON and Chrome
  trace-event (Perfetto) trace exports, CSV metric rows;
* :mod:`repro.obs.cli` — the ``perf record``/``perf compare`` and
  ``trace`` subcommands.

Every pipeline layer (TLSim, the rewriting engine, the Positive-Equality
encoder, the Tseitin translation, the CDCL solver) records spans and
counters against the *ambient* tracer (:func:`current_tracer`), which is
the no-op :data:`NULL_TRACER` unless a caller installs a real one with
:func:`use_tracer` — :func:`repro.core.verify` does so for every run and
derives its ``timings`` dict from the resulting span tree.
"""

from .exporters import (
    metrics_to_csv,
    render_span_tree,
    trace_from_chrome,
    trace_from_json,
    trace_to_chrome,
    trace_to_json,
)
from .metrics import (
    ComparisonReport,
    DEFAULT_TOLERANCES,
    MetricDelta,
    MetricsRegistry,
    MetricsSnapshot,
    Tolerance,
    compare_snapshots,
    merge_snapshots,
    snapshot_from_result,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tolerance",
    "MetricDelta",
    "ComparisonReport",
    "DEFAULT_TOLERANCES",
    "snapshot_from_result",
    "merge_snapshots",
    "compare_snapshots",
    "render_span_tree",
    "trace_to_json",
    "trace_from_json",
    "trace_to_chrome",
    "trace_from_chrome",
    "metrics_to_csv",
]
