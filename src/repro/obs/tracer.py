"""Hierarchical span tracer for the verification pipeline.

A :class:`Span` is one timed region of the pipeline — "simulate",
"translate", "sat" — with wall-clock and CPU duration plus a free-form
counter dictionary ("tlsim.cycles", "sat.conflicts", ...).  Spans nest:
the encoding stages are children of "translate", which is a child of the
"verify" root, mirroring where the time actually goes (the per-stage cost
profiles of the paper's Tables 1–5).

A :class:`Tracer` owns a tree of spans.  It is thread-safe: the *open*
span stack is thread-local (a span opened on a worker thread becomes a
root of that thread's sub-tree rather than corrupting another thread's
nesting), while the finished tree is guarded by a lock.

The instrumented hot paths never check "is tracing enabled?" — they call
:func:`current_tracer` and talk to whatever they get back.  When tracing
is off that is the shared :data:`NULL_TRACER`, whose ``span``/``add``/
``set`` are allocation-free no-ops, so instrumentation costs nothing in
the default configuration.

Usage::

    tracer = Tracer()
    with use_tracer(tracer):          # make it the ambient tracer
        with tracer.span("verify"):
            ...                        # instrumented layers record here
    print(tracer.root.wall_seconds)
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
]


class Span:
    """One timed, counted region; a node in the trace tree."""

    __slots__ = (
        "name",
        "start_offset",
        "wall_seconds",
        "cpu_seconds",
        "counters",
        "children",
    )

    def __init__(self, name: str, start_offset: float = 0.0) -> None:
        self.name = name
        #: seconds since the owning tracer's epoch at which the span opened.
        self.start_offset = start_offset
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []

    # -- counters --------------------------------------------------------

    def add(self, counter: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto ``counter`` (creating it at 0)."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    def set(self, counter: str, value: float) -> None:
        """Overwrite ``counter`` with ``value`` (a gauge)."""
        self.counters[counter] = value

    # -- tree queries ----------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        stack: List[Span] = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in pre-order, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self, counter: str) -> float:
        """Sum of ``counter`` over this span and all descendants."""
        return sum(span.counters.get(counter, 0.0) for span in self.walk())

    def all_counters(self) -> Dict[str, float]:
        """Every counter in the subtree, summed by name."""
        totals: Dict[str, float] = {}
        for span in self.walk():
            for counter, value in span.counters.items():
                totals[counter] = totals.get(counter, 0.0) + value
        return totals

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_offset": self.start_offset,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], float(data.get("start_offset", 0.0)))
        span.wall_seconds = float(data.get("wall_seconds", 0.0))
        span.cpu_seconds = float(data.get("cpu_seconds", 0.0))
        span.counters = {
            str(k): float(v) for k, v in data.get("counters", {}).items()
        }
        span.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={self.wall_seconds:.6f}s, "
            f"{len(self.counters)} counters, {len(self.children)} children)"
        )


class _SpanContext:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_span", "_start_wall", "_start_cpu")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._start_wall = time.perf_counter()
        self._start_cpu = time.thread_time()
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        self._span.wall_seconds = time.perf_counter() - self._start_wall
        self._span.cpu_seconds = time.thread_time() - self._start_cpu
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects a tree of spans; see the module docstring."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        #: finished and in-progress top-level spans, in open order.
        self.roots: List[Span] = []

    # -- span stack (thread-local) ---------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- public API ------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        """Open a child span of the current span (context manager)."""
        offset = time.perf_counter() - self._epoch
        return _SpanContext(self, Span(name, offset))

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add(self, counter: str, value: float = 1.0) -> None:
        """Accumulate onto the current span; dropped when none is open."""
        span = self.current()
        if span is not None:
            span.add(counter, value)

    def set(self, counter: str, value: float) -> None:
        """Overwrite a gauge on the current span; dropped when none open."""
        span = self.current()
        if span is not None:
            span.set(counter, value)

    @property
    def root(self) -> Optional[Span]:
        """The first top-level span, or ``None`` before any span opened."""
        return self.roots[0] if self.roots else None


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`; records nothing."""

    __slots__ = ()
    name = "<null>"
    start_offset = 0.0
    wall_seconds = 0.0
    cpu_seconds = 0.0
    counters: Dict[str, float] = {}
    children: List[Span] = []

    def add(self, counter: str, value: float = 1.0) -> None:
        pass

    def set(self, counter: str, value: float) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Do-nothing tracer; the ambient default when tracing is off.

    Every method returns shared immutable singletons, so instrumented
    code pays one attribute lookup and no allocation per event.
    """

    __slots__ = ()
    roots: List[Span] = []
    root = None

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def current(self) -> None:
        return None

    def add(self, counter: str, value: float = 1.0) -> None:
        pass

    def set(self, counter: str, value: float) -> None:
        pass


NULL_TRACER = NullTracer()

_ACTIVE: ContextVar[object] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer():
    """The ambient tracer (a :class:`Tracer` or :data:`NULL_TRACER`)."""
    return _ACTIVE.get()


class use_tracer:
    """Context manager installing ``tracer`` as the ambient tracer."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer) -> None:
        self._tracer = tracer

    def __enter__(self):
        self._token = _ACTIVE.set(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info: Any) -> bool:
        _ACTIVE.reset(self._token)
        return False
