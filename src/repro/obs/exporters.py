"""Exporters for trace trees and metric snapshots.

Four output formats:

* :func:`render_span_tree` — human-readable indented tree with wall/CPU
  durations and counters (the ``python -m repro trace`` default);
* :func:`trace_to_json` / :func:`trace_from_json` — lossless span-tree
  serialization;
* :func:`trace_to_chrome` / :func:`trace_from_chrome` — the Chrome
  trace-event format (one complete ``"ph": "X"`` event per span),
  loadable in Perfetto / ``chrome://tracing``.  Each event additionally
  carries ``args.spanIndex``/``args.parentIndex`` so the exact tree shape
  round-trips even for zero-duration spans whose intervals coincide;
* :func:`metrics_to_csv` — one ``metric,value`` row per metric of a
  :class:`~repro.obs.metrics.MetricsSnapshot`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsSnapshot
from .tracer import Span

__all__ = [
    "render_span_tree",
    "trace_to_json",
    "trace_from_json",
    "trace_to_chrome",
    "trace_from_chrome",
    "metrics_to_csv",
]


def render_span_tree(root: Span, counters: bool = True) -> str:
    """Indented text rendering of a span tree.

    ::

        verify                     wall 120.1ms  cpu 119.8ms
          simulate                 wall  13.2ms  cpu  13.1ms  [tlsim.cycles=12 ...]
          ...
    """
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        line = (
            f"{label:<32} wall {span.wall_seconds * 1000:9.2f}ms  "
            f"cpu {span.cpu_seconds * 1000:9.2f}ms"
        )
        if counters and span.counters:
            rendered = ", ".join(
                f"{name}={_format_value(value)}"
                for name, value in sorted(span.counters.items())
            )
            line += f"  [{rendered}]"
        lines.append(line)
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------


def trace_to_json(root: Span, indent: Optional[int] = 2) -> str:
    return json.dumps(root.to_dict(), indent=indent, sort_keys=True)


def trace_from_json(payload: str) -> Span:
    return Span.from_dict(json.loads(payload))


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------


def trace_to_chrome(root: Span, pid: int = 1, tid: int = 1) -> Dict[str, Any]:
    """Chrome trace-event JSON object for one span tree.

    Timestamps/durations are microseconds relative to the root's start,
    which is what Perfetto expects of ``"ph": "X"`` complete events.
    """
    events: List[Dict[str, Any]] = []

    def emit(span: Span, parent_index: int) -> None:
        index = len(events)
        args: Dict[str, Any] = {
            "spanIndex": index,
            "parentIndex": parent_index,
        }
        if span.counters:
            args["counters"] = {
                name: value for name, value in sorted(span.counters.items())
            }
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": (span.start_offset - root.start_offset) * 1e6,
                "dur": span.wall_seconds * 1e6,
                "pid": pid,
                "tid": tid,
                "cat": "repro",
                "args": args,
            }
        )
        for child in span.children:
            emit(child, index)

    emit(root, -1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def trace_from_chrome(payload: Dict[str, Any]) -> List[Span]:
    """Rebuild span trees from a Chrome trace produced by
    :func:`trace_to_chrome`.

    Uses the embedded ``spanIndex``/``parentIndex`` links when present
    (exact round-trip); falls back to interval containment per
    pid/tid track for traces from other producers.
    """
    events = payload.get("traceEvents", [])
    complete = [ev for ev in events if ev.get("ph") == "X"]
    if all(
        isinstance(ev.get("args"), dict) and "spanIndex" in ev["args"]
        for ev in complete
    ) and complete:
        return _from_indexed(complete)
    return _from_containment(complete)


def _span_of_event(event: Dict[str, Any]) -> Span:
    span = Span(
        str(event.get("name", "")),
        float(event.get("ts", 0.0)) / 1e6,
    )
    span.wall_seconds = float(event.get("dur", 0.0)) / 1e6
    args = event.get("args") or {}
    for name, value in (args.get("counters") or {}).items():
        span.counters[str(name)] = float(value)
    return span


def _from_indexed(events: List[Dict[str, Any]]) -> List[Span]:
    by_index: Dict[int, Span] = {}
    parents: Dict[int, int] = {}
    for event in events:
        index = int(event["args"]["spanIndex"])
        by_index[index] = _span_of_event(event)
        parents[index] = int(event["args"].get("parentIndex", -1))
    roots: List[Span] = []
    for index in sorted(by_index):
        parent = parents[index]
        if parent in by_index:
            by_index[parent].children.append(by_index[index])
        else:
            roots.append(by_index[index])
    return roots


def _from_containment(events: List[Dict[str, Any]]) -> List[Span]:
    eps = 1e-9
    roots: List[Span] = []
    tracks: Dict[Tuple[Any, Any], List[Tuple[float, float, Span]]] = {}
    for event in events:
        key = (event.get("pid"), event.get("tid"))
        span = _span_of_event(event)
        start = span.start_offset
        end = start + span.wall_seconds
        stack = tracks.setdefault(key, [])
        while stack and not (
            start >= stack[-1][0] - eps and end <= stack[-1][1] + eps
        ):
            stack.pop()
        if stack:
            stack[-1][2].children.append(span)
        else:
            roots.append(span)
        stack.append((start, end, span))
    return roots


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------


def metrics_to_csv(snapshot: MetricsSnapshot) -> str:
    """``metric,value`` rows, sorted by metric name, with a header."""
    lines = ["metric,value"]
    for name in sorted(snapshot.metrics):
        lines.append(f"{name},{snapshot.metrics[name]:g}")
    return "\n".join(lines) + "\n"
