"""Congruence-closure environments for the reference decision procedure.

An :class:`Env` tracks an assumption set: Boolean atom assignments,
asserted equalities (as a union-find with congruence closure over the
uninterpreted-function applications in a fixed term universe) and asserted
disequalities.  Environments are persistent in usage: ``assume`` returns a
new environment (copy-on-write of the small dictionaries), so the
case-splitting search can backtrack by simply dropping references.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..eufm.ast import BoolVar, Eq, Expr, Formula, Term, TermVar, UFApp, UPApp
from ..guard.deadline import current_deadline

__all__ = ["Env", "Inconsistent"]


class Inconsistent(Exception):
    """An assumption contradicts the current environment."""


class Env:
    """An assumption environment with congruence closure.

    ``universe`` is the set of UF application terms over which congruence
    must be maintained; it is fixed at construction (collected from the
    formula under analysis).
    """

    def __init__(self, universe: Optional[List[UFApp]] = None) -> None:
        self._parent: Dict[Term, Term] = {}
        self._diseqs: Set[FrozenSet[Term]] = set()
        self._bools: Dict[Expr, bool] = {}
        self._up_entries: List[Tuple[str, Tuple[Term, ...], bool]] = []
        self._universe: List[UFApp] = list(universe or [])

    def copy(self) -> "Env":
        clone = Env.__new__(Env)
        clone._parent = dict(self._parent)
        clone._diseqs = set(self._diseqs)
        clone._bools = dict(self._bools)
        clone._up_entries = list(self._up_entries)
        clone._universe = self._universe  # immutable by convention
        return clone

    # ------------------------------------------------------------------
    # Union-find with congruence
    # ------------------------------------------------------------------

    def find(self, term: Term) -> Term:
        root = term
        while root in self._parent:
            root = self._parent[root]
        while term in self._parent:
            next_term = self._parent[term]
            if next_term is not root:
                self._parent[term] = root
            term = next_term
        return root

    def congruent(self, lhs: Term, rhs: Term) -> bool:
        return self.find(lhs) is self.find(rhs)

    def known_distinct(self, lhs: Term, rhs: Term) -> bool:
        pair = frozenset((self.find(lhs), self.find(rhs)))
        if len(pair) == 1:
            return False
        return pair in self._diseqs

    def _merge(self, lhs: Term, rhs: Term) -> None:
        root_l, root_r = self.find(lhs), self.find(rhs)
        if root_l is root_r:
            return
        if frozenset((root_l, root_r)) in self._diseqs:
            raise Inconsistent(f"{lhs!r} = {rhs!r} contradicts a disequality")
        # Union by uid for determinism.
        if root_r.uid < root_l.uid:
            root_l, root_r = root_r, root_l
        self._parent[root_r] = root_l
        self._diseqs = {
            frozenset(self.find(t) for t in pair) for pair in self._diseqs
        }
        if any(len(pair) == 1 for pair in self._diseqs):
            raise Inconsistent("merge collapsed a disequality")
        self._propagate_congruence()
        self._check_up_consistency()

    def _propagate_congruence(self) -> None:
        """Merge UF applications with pairwise-congruent arguments."""
        deadline = current_deadline()
        changed = True
        while changed:
            deadline.tick("decision")
            changed = False
            signatures: Dict[Tuple, Term] = {}
            for app in self._universe:
                signature = (
                    app.symbol,
                    tuple(self.find(arg) for arg in app.args),
                )
                other = signatures.get(signature)
                if other is None:
                    signatures[signature] = app
                elif self.find(other) is not self.find(app):
                    root_a, root_b = self.find(other), self.find(app)
                    if frozenset((root_a, root_b)) in self._diseqs:
                        raise Inconsistent("congruence contradicts disequality")
                    if root_b.uid < root_a.uid:
                        root_a, root_b = root_b, root_a
                    self._parent[root_b] = root_a
                    self._diseqs = {
                        frozenset(self.find(t) for t in pair)
                        for pair in self._diseqs
                    }
                    if any(len(pair) == 1 for pair in self._diseqs):
                        raise Inconsistent("congruence collapsed a disequality")
                    changed = True

    def _check_up_consistency(self) -> None:
        for i, (sym_a, args_a, val_a) in enumerate(self._up_entries):
            for sym_b, args_b, val_b in self._up_entries[i + 1 :]:
                if sym_a != sym_b or val_a == val_b:
                    continue
                if len(args_a) == len(args_b) and all(
                    self.congruent(x, y) for x, y in zip(args_a, args_b)
                ):
                    raise Inconsistent(
                        f"predicate {sym_a} inconsistent on congruent arguments"
                    )

    # ------------------------------------------------------------------
    # Assumptions and queries
    # ------------------------------------------------------------------

    def _extend_universe(self, atom: Formula) -> None:
        """Add every UF application inside ``atom`` to the congruence universe.

        Simplification can synthesize new applications (e.g. ``f(x)`` from
        ``f(ITE(p, x, y))`` once ``p`` is decided); congruence must cover
        them from the moment they are mentioned in an assumption.
        """
        from ..eufm.traversal import iter_dag

        known = set(self._universe)
        new_apps = [
            node
            for node in iter_dag(atom)
            if isinstance(node, UFApp) and node not in known
        ]
        if new_apps:
            self._universe = self._universe + new_apps
            self._propagate_congruence()

    def assume(self, atom: Formula, value: bool) -> Optional["Env"]:
        """Return a new environment with ``atom := value``; None on conflict."""
        clone = self.copy()
        try:
            clone._extend_universe(atom)
            if isinstance(atom, Eq):
                if value:
                    clone._merge(atom.lhs, atom.rhs)
                else:
                    if clone.congruent(atom.lhs, atom.rhs):
                        raise Inconsistent("disequality on congruent terms")
                    clone._diseqs.add(
                        frozenset((clone.find(atom.lhs), clone.find(atom.rhs)))
                    )
            elif isinstance(atom, BoolVar):
                existing = clone._bools.get(atom)
                if existing is not None and existing != value:
                    raise Inconsistent(f"{atom.name} assigned both ways")
                clone._bools[atom] = value
            elif isinstance(atom, UPApp):
                known = clone.query(atom)
                if known is not None and known != value:
                    raise Inconsistent(f"{atom.symbol} inconsistent assumption")
                clone._up_entries.append((atom.symbol, atom.args, value))
            else:
                raise TypeError(f"cannot assume on node kind {atom.kind!r}")
        except Inconsistent:
            return None
        return clone

    def query(self, atom: Formula) -> Optional[bool]:
        """Truth value of ``atom`` in this environment, if determined."""
        if isinstance(atom, Eq):
            if self.congruent(atom.lhs, atom.rhs):
                return True
            if self.known_distinct(atom.lhs, atom.rhs):
                return False
            return None
        if isinstance(atom, BoolVar):
            return self._bools.get(atom)
        if isinstance(atom, UPApp):
            for symbol, args, value in self._up_entries:
                if (
                    symbol == atom.symbol
                    and len(args) == len(atom.args)
                    and all(self.congruent(x, y) for x, y in zip(args, atom.args))
                ):
                    return value
            return None
        raise TypeError(f"cannot query node kind {atom.kind!r}")
