"""A reference validity checker for memory-free EUFM formulas.

Decides satisfiability/validity by case splitting over the formula's atoms
with congruence-closure theory propagation (:mod:`.congruence`).  It is an
independent implementation path from the Positive-Equality encoding and is
used (a) as an oracle in tests and (b) as a fallback discharge engine for
the rewriting-rule proof obligations.

The split order resolves the guards of term-level ITEs first, so that
equations and predicate applications are only asserted over ITE-free terms
(where congruence closure is complete).  Exponential in the worst case;
intended for small formulas and for structured obligations where
simplification prunes aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import BudgetExhausted, SolverError
from ..eufm import builder
from ..guard.deadline import current_deadline
from ..obs.tracer import current_tracer
from ..eufm.ast import (
    FALSE,
    TRUE,
    BoolVar,
    Eq,
    Expr,
    Formula,
    Read,
    Term,
    TermITE,
    UFApp,
    UPApp,
    Write,
)
from ..eufm.traversal import iter_dag, _rebuild
from .congruence import Env

__all__ = ["DecisionBudget", "BudgetExceeded", "is_satisfiable", "is_valid"]


class BudgetExceeded(BudgetExhausted):
    """The split budget was exhausted before a decision was reached."""


@dataclass
class DecisionBudget:
    """Mutable budget shared across a decision run."""

    max_splits: int = 200_000
    splits: int = 0

    def charge(self) -> None:
        self.splits += 1
        if self.splits > self.max_splits:
            raise BudgetExceeded(
                f"exceeded {self.max_splits} case splits",
                budget_kind="splits",
            )


def is_valid(phi: Formula, budget: Optional[DecisionBudget] = None) -> bool:
    """True when ``phi`` holds under every interpretation."""
    return not is_satisfiable(builder.not_(phi), budget)


def is_satisfiable(phi: Formula, budget: Optional[DecisionBudget] = None) -> bool:
    """True when some interpretation makes ``phi`` true."""
    for node in iter_dag(phi):
        if isinstance(node, (Read, Write)):
            raise TypeError(
                "the reference decision procedure handles memory-free "
                "formulas; run memory elimination first"
            )
    universe = [node for node in iter_dag(phi) if isinstance(node, UFApp)]
    env = Env(universe)
    budget = budget or DecisionBudget()
    return _search(phi, env, budget)


def _search(phi: Formula, env: Env, budget: DecisionBudget) -> bool:
    phi = _simplify(phi, env)
    if phi is TRUE:
        return True
    if phi is FALSE:
        return False
    atom = _pick_atom(phi)
    if atom is None:
        raise SolverError(
            "non-constant formula without a splittable atom: "
            "this indicates a simplification gap"
        )
    budget.charge()
    # Cooperative supervision: the splitter is exponential in the worst
    # case, so honor the ambient pipeline deadline and surface the work
    # on the trace (tick() rate-limits the actual clock reads).
    current_deadline().tick("decision")
    current_tracer().add("decision.splits", 1)
    for value in (True, False):
        extended = env.assume(atom, value)
        if extended is not None and _search(phi, extended, budget):
            return True
    return False


def _simplify(phi: Formula, env: Env) -> Formula:
    """Rebuild ``phi`` bottom-up, folding atoms decided by ``env``."""
    rebuilt: Dict[Expr, Expr] = {}
    for node in iter_dag(phi):
        if isinstance(node, (Eq, BoolVar, UPApp)):
            candidate = _rebuild(node, rebuilt)
            if isinstance(candidate, (Eq, BoolVar, UPApp)):
                value = env.query(candidate)
                if value is not None:
                    rebuilt[node] = TRUE if value else FALSE
                    continue
            rebuilt[node] = candidate
        else:
            rebuilt[node] = _rebuild(node, rebuilt)
    result = rebuilt[phi]
    if not isinstance(result, Formula):
        raise TypeError("simplification changed the sort of the root")
    return result


def _pick_atom(phi: Formula) -> Optional[Formula]:
    """An undetermined atom whose terms contain no ITEs.

    Splitting only on ITE-free atoms keeps the congruence closure exact;
    inner ITE guards always provide such an atom (see module docstring).
    """
    has_ite: Dict[Expr, bool] = {}
    candidates: List[Formula] = []
    for node in iter_dag(phi):
        children_have = any(has_ite.get(child, False) for child in node.children)
        has_ite[node] = isinstance(node, TermITE) or children_have
        if isinstance(node, BoolVar):
            candidates.append(node)
        elif isinstance(node, (Eq, UPApp)) and not has_ite[node]:
            candidates.append(node)
    if not candidates:
        return None
    # Deterministic choice: the atom with the smallest uid tends to be a
    # leaf-level guard, which folds ITEs early.
    return min(candidates, key=lambda atom: atom.uid)


def prove_equal_under(
    lhs: Term,
    rhs: Term,
    context: Formula,
    budget: Optional[DecisionBudget] = None,
) -> bool:
    """True when ``context -> lhs = rhs`` is valid.

    Used by the rewriting engine to discharge the data-equality obligations
    of Sect. 6 when purely structural comparison is insufficient.
    """
    obligation = builder.implies(context, builder.eq(lhs, rhs))
    return is_valid(obligation, budget)
