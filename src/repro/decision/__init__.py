"""Reference decision procedure for memory-free EUFM formulas.

Case splitting over atoms with congruence-closure theory propagation — an
independent implementation path from the Positive-Equality encoding, used
as a testing oracle and as the fallback discharge engine for rewriting-rule
proof obligations.
"""

from .congruence import Env, Inconsistent
from .splitter import (
    BudgetExceeded,
    DecisionBudget,
    is_satisfiable,
    is_valid,
)
from .splitter import prove_equal_under

__all__ = [
    "Env",
    "Inconsistent",
    "BudgetExceeded",
    "DecisionBudget",
    "is_satisfiable",
    "is_valid",
    "prove_equal_under",
]
