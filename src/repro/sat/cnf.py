"""CNF clause databases and DIMACS I/O.

Literals use the DIMACS convention: variable ``v`` (a positive integer)
appears positively as ``v`` and negatively as ``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

__all__ = ["Cnf", "parse_dimacs", "to_dimacs"]


@dataclass
class Cnf:
    """A CNF formula: a clause list plus optional variable names.

    ``names`` maps variable indices to human-readable names (e.g. the EUFM
    Boolean variable or the ``e_ij`` comparison a CNF variable encodes);
    it is metadata only and does not affect satisfiability.
    """

    num_vars: int = 0
    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    names: Dict[int, str] = field(default_factory=dict)

    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally recording a name for it."""
        self.num_vars += 1
        if name is not None:
            self.names[self.num_vars] = name
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; tautologies are dropped, duplicates merged."""
        unique: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = abs(lit)
            if var > self.num_vars:
                raise ValueError(f"literal {lit} references unallocated variable")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                unique.append(lit)
        self.clauses.append(tuple(unique))

    def dedupe(self) -> int:
        """Drop repeated clauses, keeping first occurrences.

        Clauses are compared as literal *sets*, so permutations of the
        same clause collapse too.  An empty clause is kept (one copy) —
        it is the unsatisfiable verdict, not noise.  Returns the number
        of clauses removed.
        """
        seen = set()
        kept: List[Tuple[int, ...]] = []
        for clause in self.clauses:
            key = frozenset(clause)
            if key in seen:
                continue
            seen.add(key)
            kept.append(clause)
        removed = len(self.clauses) - len(kept)
        self.clauses = kept
        return removed

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def stats(self) -> Dict[str, int]:
        return {
            "vars": self.num_vars,
            "clauses": self.num_clauses,
            "literals": sum(len(c) for c in self.clauses),
        }

    def check_assignment(self, assignment: Dict[int, bool]) -> bool:
        """True when every clause has a satisfied literal under ``assignment``.

        A literal whose variable is *missing* from ``assignment`` never
        satisfies a clause: an incomplete model is rejected rather than
        the missing variables being read as false (which wrongly
        validated negative literals of unassigned variables).  The
        witness replay path relies on this to reject truncated
        counterexamples.
        """
        for clause in self.clauses:
            satisfied = False
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is not None and value == (lit > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True


def to_dimacs(cnf: Cnf, comments: Sequence[str] = ()) -> str:
    """Render a CNF formula in DIMACS format."""
    lines: List[str] = [f"c {comment}" for comment in comments]
    for var in sorted(cnf.names):
        lines.append(f"c var {var} = {cnf.names[var]}")
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> Cnf:
    """Parse a DIMACS CNF file (ignoring comments)."""
    cnf: Optional[Cnf] = None
    pending: List[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            cnf = Cnf(num_vars=int(parts[2]))
            continue
        if cnf is None:
            raise ValueError("clause before problem line")
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if cnf is None:
        raise ValueError("missing problem line")
    if pending:
        cnf.add_clause(pending)
    return cnf
