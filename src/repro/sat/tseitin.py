"""Tseitin translation of propositional EUFM formulas to CNF.

The input must be purely propositional: Boolean variables, negation,
conjunction, disjunction, formula-ITE and constants.  Equations, UPs and
terms must have been eliminated by the :mod:`repro.encode` pipeline first.

Two encodings are provided:

* **full** Tseitin — each connective gets a definition variable with
  clauses in both directions; equisatisfiable and model-preserving.
* **Plaisted–Greenbaum** (``polarity_aware=True``) — definition clauses
  are emitted only in the direction(s) each gate's polarity requires,
  roughly halving the clause count; equisatisfiable (the standard
  optimization in EVC-era tool flows).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..eufm.ast import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    BoolVar,
    Expr,
    Formula,
    FormulaITE,
    Not,
    Or,
)
from ..eufm.traversal import iter_dag
from ..guard.deadline import current_deadline
from ..obs.tracer import current_tracer
from .cnf import Cnf

__all__ = ["TseitinResult", "tseitin", "cnf_for_satisfiability"]


class TseitinResult:
    """Outcome of a Tseitin translation.

    Attributes:
        cnf: the clause database (definition clauses only; no root unit).
        root_literal: literal equivalent to the input formula, or ``None``
            when the input collapsed to a constant.
        constant: the constant value when the input is ``TRUE``/``FALSE``.
        var_map: EUFM Boolean variable -> CNF variable index.
    """

    def __init__(
        self,
        cnf: Cnf,
        root_literal,
        constant,
        var_map: Dict[BoolVar, int],
    ) -> None:
        self.cnf = cnf
        self.root_literal = root_literal
        self.constant = constant
        self.var_map = var_map


_POS = 1
_NEG = 2
_BOTH = _POS | _NEG


def _gate_polarities(phi: Formula) -> Dict[Expr, int]:
    """Polarity masks of every formula node with respect to the root."""
    deadline = current_deadline()
    polarity: Dict[Expr, int] = {phi: _POS}
    worklist = [phi]
    while worklist:
        deadline.tick("encode.tseitin")
        node = worklist.pop()
        mask = polarity[node]
        children: Tuple[Tuple[Formula, int], ...]
        if isinstance(node, Not):
            flipped = ((mask & _POS) and _NEG) | ((mask & _NEG) and _POS)
            children = ((node.arg, flipped),)
        elif isinstance(node, (And, Or)):
            children = tuple((arg, mask) for arg in node.args)
        elif isinstance(node, FormulaITE):
            children = (
                (node.cond, _BOTH),
                (node.then, mask),
                (node.els, mask),
            )
        else:
            children = ()
        for child, child_mask in children:
            old = polarity.get(child, 0)
            new = old | child_mask
            if new != old:
                polarity[child] = new
                worklist.append(child)
    return polarity


def tseitin(phi: Formula, polarity_aware: bool = False) -> TseitinResult:
    """Translate ``phi`` into CNF definition clauses plus a root literal."""
    if phi is TRUE or phi is FALSE:
        return TseitinResult(Cnf(), None, phi is TRUE, {})

    cnf = Cnf()
    var_map: Dict[BoolVar, int] = {}
    literal: Dict[Expr, int] = {}
    deadline = current_deadline()
    deadline.check("encode.tseitin")
    polarity = _gate_polarities(phi) if polarity_aware else None

    def directions(node) -> Tuple[bool, bool]:
        if polarity is None:
            return True, True
        mask = polarity.get(node, _BOTH)
        return bool(mask & _POS), bool(mask & _NEG)

    for node in iter_dag(phi):
        deadline.tick("encode.tseitin")
        if isinstance(node, BoolConst):
            raise ValueError(
                "Boolean constants below the root should have been simplified away"
            )
        if isinstance(node, BoolVar):
            index = cnf.new_var(node.name)
            var_map[node] = index
            literal[node] = index
        elif isinstance(node, Not):
            literal[node] = -literal[node.arg]
        elif isinstance(node, And):
            forward, backward = directions(node)
            literal[node] = _define_and(
                cnf, [literal[a] for a in node.args], forward, backward
            )
        elif isinstance(node, Or):
            # g = OR(args) encoded as -g = AND(-args); the directions swap
            # because the gate literal is negated.
            forward, backward = directions(node)
            literal[node] = -_define_and(
                cnf, [-literal[a] for a in node.args], backward, forward
            )
        elif isinstance(node, FormulaITE):
            forward, backward = directions(node)
            literal[node] = _define_ite(
                cnf,
                literal[node.cond],
                literal[node.then],
                literal[node.els],
                forward,
                backward,
            )
        else:
            raise TypeError(
                f"non-propositional node {node.kind!r} reached the Tseitin "
                "translation; run the encoding pipeline first"
            )
    return TseitinResult(cnf, literal[phi], None, var_map)


def _define_and(cnf: Cnf, literals, forward: bool, backward: bool) -> int:
    """Fresh ``g`` with clauses for ``g -> AND`` and/or ``AND -> g``."""
    gate = cnf.new_var()
    if forward:
        for lit in literals:
            cnf.add_clause([-gate, lit])
    if backward:
        cnf.add_clause([gate] + [-lit for lit in literals])
    return gate


def _define_ite(
    cnf: Cnf, cond: int, then: int, els: int, forward: bool, backward: bool
) -> int:
    """Fresh ``g`` with directional clauses for ``g <-> (cond ? then : els)``."""
    gate = cnf.new_var()
    if forward:
        cnf.add_clause([-gate, -cond, then])
        cnf.add_clause([-gate, cond, els])
        cnf.add_clause([-gate, then, els])  # propagation-strengthening
    if backward:
        cnf.add_clause([gate, -cond, -then])
        cnf.add_clause([gate, cond, -els])
        cnf.add_clause([gate, -then, -els])  # propagation-strengthening
    return gate


def cnf_for_satisfiability(
    phi: Formula, polarity_aware: bool = False
) -> TseitinResult:
    """CNF whose satisfiability coincides with that of ``phi``.

    When ``phi`` is constant, ``cnf`` is empty (constant ``True``) or holds
    the empty clause (constant ``False``); otherwise the root literal is
    asserted as a unit clause.
    """
    result = tseitin(phi, polarity_aware=polarity_aware)
    if result.root_literal is None:
        if not result.constant:
            result.cnf.clauses.append(())
    else:
        result.cnf.add_clause([result.root_literal])
        # The solver should never see the same clause twice (shared gate
        # structure can reproduce a definition clause verbatim).
        result.cnf.dedupe()
    tracer = current_tracer()
    tracer.add("tseitin.cnf_vars", result.cnf.num_vars)
    tracer.add("tseitin.cnf_clauses", result.cnf.num_clauses)
    tracer.add("tseitin.primary_inputs", len(result.var_map))
    tracer.add("tseitin.gate_vars", result.cnf.num_vars - len(result.var_map))
    return result
