"""Exhaustive reference SAT solver used to validate the CDCL solver."""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional

from .cnf import Cnf

__all__ = ["solve_by_enumeration"]


def solve_by_enumeration(cnf: Cnf, max_vars: int = 22) -> Optional[Dict[int, bool]]:
    """Return a satisfying assignment, or ``None`` when unsatisfiable.

    Enumerates all assignments; guarded by ``max_vars`` so tests cannot
    accidentally request an exponential blow-up.
    """
    if cnf.num_vars > max_vars:
        raise ValueError(
            f"{cnf.num_vars} variables exceed the enumeration bound {max_vars}"
        )
    if any(len(clause) == 0 for clause in cnf.clauses):
        return None
    for bits in product([False, True], repeat=cnf.num_vars):
        assignment = {var: bits[var - 1] for var in range(1, cnf.num_vars + 1)}
        if cnf.check_assignment(assignment):
            return assignment
    return None
