"""Pluggable SAT backend protocol.

The reproduction's own CDCL solver (:mod:`repro.sat.solver`) is the
*reference* backend: pure Python, deterministic, and the only one that
emits DRUP proofs for the witness checker.  This module lets a compiled
solver take its place when one is importable (`python-sat`) or on
``$PATH`` (any DIMACS-speaking solver binary), selected per run via
``--sat-backend`` or ambiently via the ``REPRO_SAT_BACKEND`` environment
variable.

The contract every backend must honour: **verdicts are semantics-free of
the backend choice** — sat/unsat answers agree with the reference for
every input (models may differ; any model must still satisfy the CNF).
Because of that contract the backend name is deliberately *not* part of
:func:`repro.core.keys.canonical_key`: cached verdicts are valid across
backends, and a cache populated under one backend may serve another.
Capability flags tell callers what else a backend can do:

``supports_proof``
    emits DRUP proof steps compatible with :mod:`repro.witness.drup`.
    Callers that need a certifiable UNSAT (``--certify``) fall back to
    the reference backend when the selected one cannot log proofs.
``supports_assumptions``
    honours ``solve(assumptions=...)`` natively (with failed-assumption
    cores where the underlying solver exposes them).

Backends are *classes*; :func:`resolve_backend` maps a name to a class
and :func:`current_backend` reads the ambient selection.  Instances are
one-shot-or-incremental solver handles for a fixed variable count.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from ..errors import SolverError
from ..obs.tracer import current_tracer
from .cnf import Cnf, to_dimacs
from .solver import SatResult
from .solver import solve_cnf as _reference_solve_cnf

__all__ = [
    "SatBackend",
    "ReferenceBackend",
    "PySatBackend",
    "DimacsSubprocessBackend",
    "BACKENDS",
    "available_backends",
    "resolve_backend",
    "current_backend",
    "use_backend",
]


class SatBackend(ABC):
    """Abstract solver handle: ``add_clause``/``solve``/``model``/``proof``.

    Subclasses fix the capability flags as class attributes and provide
    :meth:`is_available` so callers can probe without importing optional
    dependencies eagerly.
    """

    #: registry name (also the ``--sat-backend`` spelling).
    name: str = "abstract"
    supports_proof: bool = False
    supports_assumptions: bool = False

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return False

    @abstractmethod
    def __init__(self, num_vars: int, log_proof: bool = False) -> None:
        ...

    @abstractmethod
    def add_clause(self, literals: Sequence[int]) -> None:
        ...

    @abstractmethod
    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        ...

    def model(self) -> Optional[Dict[int, bool]]:
        """Model of the last ``solve`` call, if it was sat."""
        return self._last_result.model if self._last_result else None

    def proof(self) -> Optional[List[Tuple[str, Tuple[int, ...]]]]:
        """DRUP steps of the last ``solve`` call, when supported."""
        return self._last_result.proof if self._last_result else None

    _last_result: Optional[SatResult] = None

    @classmethod
    def solve_cnf(
        cls,
        cnf: Cnf,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        log_proof: bool = False,
    ) -> SatResult:
        """One-shot convenience: load ``cnf`` into a fresh handle, solve."""
        handle = cls(cnf.num_vars, log_proof=log_proof)
        for clause in cnf.clauses:
            handle.add_clause(clause)
        return handle.solve(
            max_conflicts=max_conflicts, max_seconds=max_seconds
        )


class ReferenceBackend(SatBackend):
    """The in-tree CDCL solver — always available, proofs and assumptions.

    The incremental handle wraps :class:`repro.sat.incremental.\
    IncrementalSolver`; the one-shot :meth:`solve_cnf` path delegates to
    the classic :func:`repro.sat.solver.solve_cnf` so default behaviour
    (and the perf-smoke baseline counters) stay byte-identical.
    """

    name = "reference"
    supports_proof = True
    supports_assumptions = True

    @classmethod
    def is_available(cls) -> bool:
        return True

    def __init__(self, num_vars: int, log_proof: bool = False) -> None:
        self._cnf = Cnf(num_vars=num_vars)
        self._log_proof = log_proof
        self._solver = None  # built lazily on first solve
        self._last_result = None

    def add_clause(self, literals: Sequence[int]) -> None:
        if self._solver is None:
            self._cnf.clauses.append(tuple(literals))
        else:
            self._solver.add_clause(literals)

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        # Imported here to avoid a cycle (incremental imports solver).
        from .incremental import IncrementalSolver

        if self._solver is None:
            self._solver = IncrementalSolver(
                self._cnf, log_proof=self._log_proof
            )
        result = self._solver.solve(
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
            assumptions=assumptions,
        )
        self._last_result = result
        return result

    @classmethod
    def solve_cnf(
        cls,
        cnf: Cnf,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        log_proof: bool = False,
    ) -> SatResult:
        return _reference_solve_cnf(
            cnf,
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
            log_proof=log_proof,
        )


class PySatBackend(SatBackend):
    """Adapter over ``python-sat`` (PySAT), when importable.

    No DRUP logging (PySAT's bundled solvers do not expose it through
    the Python API), so certifying runs fall back to the reference.
    ``max_seconds`` is best-effort ignored — PySAT offers no portable
    wall-clock budget; ``max_conflicts`` maps to ``conf_budget``.
    """

    name = "pysat"
    supports_proof = False
    supports_assumptions = True

    #: PySAT solver class to instantiate (a name from pysat.solvers).
    SOLVER_NAME = "glucose3"

    @classmethod
    def is_available(cls) -> bool:
        try:
            import pysat.solvers  # noqa: F401
        except Exception:
            return False
        return True

    def __init__(self, num_vars: int, log_proof: bool = False) -> None:
        if log_proof:
            raise SolverError(
                "sat backend 'pysat' cannot log DRUP proofs; use the "
                "reference backend for certifying runs"
            )
        from pysat.solvers import Solver as _PySolver

        self.num_vars = num_vars
        self._solver = _PySolver(name=self.SOLVER_NAME, incr=True)
        self._prev_stats: Dict[str, int] = {}
        self._last_result = None

    def add_clause(self, literals: Sequence[int]) -> None:
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError(
                    f"clause literal {lit} is outside the variable range "
                    f"1..{self.num_vars}"
                )
        self._solver.add_clause(list(literals))

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        with current_tracer().span("sat") as span:
            start = time.perf_counter()
            if max_conflicts is not None:
                self._solver.conf_budget(max_conflicts)
                outcome = self._solver.solve_limited(
                    assumptions=list(assumptions)
                )
            else:
                outcome = self._solver.solve(assumptions=list(assumptions))
            result = SatResult(
                status=(
                    "sat"
                    if outcome
                    else "unsat" if outcome is False else "unknown"
                )
            )
            if outcome:
                result.model = {
                    abs(lit): lit > 0
                    for lit in (self._solver.get_model() or ())
                }
            elif outcome is False and assumptions:
                core = self._solver.get_core()
                if core:
                    result.core = tuple(core)
            totals = dict(self._solver.accum_stats() or {})
            for stat_key, field in (
                ("conflicts", "conflicts"),
                ("decisions", "decisions"),
                ("propagations", "propagations"),
                ("restarts", "restarts"),
            ):
                delta = totals.get(stat_key, 0) - self._prev_stats.get(
                    stat_key, 0
                )
                setattr(result, field, max(0, delta))
            self._prev_stats = totals
            result.cpu_seconds = time.perf_counter() - start
            span.add("sat.variables", self.num_vars)
            span.add("sat.decisions", result.decisions)
            span.add("sat.conflicts", result.conflicts)
            span.add("sat.propagations", result.propagations)
            span.add("sat.restarts", result.restarts)
            self._last_result = result
            return result


class DimacsSubprocessBackend(SatBackend):
    """Adapter over any DIMACS-speaking solver binary on ``$PATH``.

    The binary is chosen by the ``REPRO_SAT_DIMACS_SOLVER`` environment
    variable when set, otherwise the first of :data:`CANDIDATES` that
    resolves.  Exit codes 10/20 (the SAT-competition convention) are
    authoritative; ``s SATISFIABLE``/``s UNSATISFIABLE`` output lines are
    the fallback.  Models are read from ``v`` lines (MiniSat's
    result-file convention is special-cased).  Assumptions are encoded
    as appended unit clauses — verdict-equivalent, but no failed-
    assumption core and no cross-call learning.  ``max_conflicts`` is
    not portable across binaries and is ignored; ``max_seconds`` maps to
    a subprocess timeout (timeout ⇒ ``"unknown"``).
    """

    name = "dimacs"
    supports_proof = False
    supports_assumptions = True

    CANDIDATES: Tuple[str, ...] = (
        "minisat",
        "cryptominisat5",
        "glucose",
        "cadical",
        "kissat",
        "picosat",
    )

    @classmethod
    def solver_path(cls) -> Optional[str]:
        override = os.environ.get("REPRO_SAT_DIMACS_SOLVER")
        if override:
            return shutil.which(override) or (
                override if os.path.exists(override) else None
            )
        for candidate in cls.CANDIDATES:
            found = shutil.which(candidate)
            if found:
                return found
        return None

    @classmethod
    def is_available(cls) -> bool:
        return cls.solver_path() is not None

    def __init__(self, num_vars: int, log_proof: bool = False) -> None:
        if log_proof:
            raise SolverError(
                "sat backend 'dimacs' cannot log DRUP proofs; use the "
                "reference backend for certifying runs"
            )
        path = self.solver_path()
        if path is None:
            raise SolverError(
                "no DIMACS solver binary found (set REPRO_SAT_DIMACS_SOLVER "
                f"or install one of: {', '.join(self.CANDIDATES)})"
            )
        self._binary = path
        self._cnf = Cnf(num_vars=num_vars)
        self._last_result = None

    @property
    def num_vars(self) -> int:
        return self._cnf.num_vars

    def add_clause(self, literals: Sequence[int]) -> None:
        self._cnf.add_clause(literals)

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        with current_tracer().span("sat") as span:
            start = time.perf_counter()
            problem = Cnf(
                num_vars=self._cnf.num_vars,
                clauses=list(self._cnf.clauses),
            )
            for lit in assumptions:
                problem.add_clause([lit])
            result = self._run_binary(problem, max_seconds)
            result.cpu_seconds = time.perf_counter() - start
            span.add("sat.variables", problem.num_vars)
            span.add("sat.clauses", problem.num_clauses)
            self._last_result = result
            return result

    def _run_binary(
        self, problem: Cnf, max_seconds: Optional[float]
    ) -> SatResult:
        is_minisat = os.path.basename(self._binary).startswith("minisat")
        with tempfile.TemporaryDirectory(prefix="repro-sat-") as workdir:
            cnf_path = os.path.join(workdir, "problem.cnf")
            with open(cnf_path, "w", encoding="utf-8") as handle:
                handle.write(to_dimacs(problem))
            command = [self._binary, cnf_path]
            out_path = None
            if is_minisat:
                out_path = os.path.join(workdir, "result.out")
                command.append(out_path)
            try:
                completed = subprocess.run(
                    command,
                    capture_output=True,
                    text=True,
                    timeout=max_seconds,
                )
            except subprocess.TimeoutExpired:
                return SatResult(status="unknown")
            except OSError as exc:
                raise SolverError(
                    f"failed to run DIMACS solver {self._binary!r}: {exc}"
                ) from exc
            output = completed.stdout or ""
            if out_path and os.path.exists(out_path):
                with open(out_path, "r", encoding="utf-8") as handle:
                    output += "\n" + handle.read()
            return self._parse(completed.returncode, output, problem)

    @staticmethod
    def _parse(returncode: int, output: str, problem: Cnf) -> SatResult:
        status = "unknown"
        if returncode == 10:
            status = "sat"
        elif returncode == 20:
            status = "unsat"
        else:
            for line in output.splitlines():
                text = line.strip()
                if text in ("s SATISFIABLE", "SATISFIABLE", "SAT"):
                    status = "sat"
                    break
                if text in ("s UNSATISFIABLE", "UNSATISFIABLE", "UNSAT"):
                    status = "unsat"
                    break
        result = SatResult(status=status)
        if status == "sat":
            model: Dict[int, bool] = {}
            for line in output.splitlines():
                text = line.strip()
                if text.startswith("v "):
                    text = text[2:]
                elif not _looks_like_literal_line(text):
                    continue
                for token in text.split():
                    lit = int(token)
                    if lit != 0:
                        model[abs(lit)] = lit > 0
            # Solvers may omit don't-care variables; complete the model
            # so downstream replay sees every variable assigned.
            for var in range(1, problem.num_vars + 1):
                model.setdefault(var, False)
            result.model = model
        return result


def _looks_like_literal_line(text: str) -> bool:
    """A bare model line (MiniSat result files): integers ending in 0."""
    if not text:
        return False
    tokens = text.split()
    if tokens[-1] != "0":
        return False
    try:
        for token in tokens:
            int(token)
    except ValueError:
        return False
    return True


#: name → backend class.  ``auto`` is resolved by :func:`resolve_backend`.
BACKENDS: Dict[str, Type[SatBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    PySatBackend.name: PySatBackend,
    DimacsSubprocessBackend.name: DimacsSubprocessBackend,
}

#: preference order for ``--sat-backend auto``.
_AUTO_ORDER: Tuple[str, ...] = ("pysat", "dimacs", "reference")


def available_backends() -> List[str]:
    """Names of backends that can run right now."""
    return [
        name for name, cls in BACKENDS.items() if cls.is_available()
    ]


def resolve_backend(name: Optional[str] = None) -> Type[SatBackend]:
    """Map a backend name to its class.

    ``None`` consults ``REPRO_SAT_BACKEND`` and falls back to the
    reference; ``"auto"`` picks the first available of
    pysat → dimacs → reference.  Unknown or unavailable names raise
    :class:`SolverError` — a misspelled backend must not silently solve
    with a different engine.
    """
    if name is None:
        name = os.environ.get("REPRO_SAT_BACKEND") or ReferenceBackend.name
    name = name.strip().lower()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            if BACKENDS[candidate].is_available():
                return BACKENDS[candidate]
        return ReferenceBackend
    cls = BACKENDS.get(name)
    if cls is None:
        raise SolverError(
            f"unknown sat backend {name!r}; known backends: "
            f"{', '.join(sorted(BACKENDS))}, auto"
        )
    if not cls.is_available():
        raise SolverError(
            f"sat backend {name!r} is not available in this environment"
        )
    return cls


_BACKEND: ContextVar[Optional[Type[SatBackend]]] = ContextVar(
    "repro_sat_backend", default=None
)


def current_backend() -> Type[SatBackend]:
    """The ambient backend class (environment-resolved by default)."""
    backend = _BACKEND.get()
    if backend is not None:
        return backend
    return resolve_backend(None)


@contextmanager
def use_backend(
    backend: Union[str, Type[SatBackend], None],
) -> Iterator[Type[SatBackend]]:
    """Install a backend (by name or class) as the ambient selection."""
    if backend is None or isinstance(backend, str):
        resolved = resolve_backend(backend)
    else:
        resolved = backend
    token = _BACKEND.set(resolved)
    try:
        yield resolved
    finally:
        _BACKEND.reset(token)
