"""A CDCL SAT solver in the style of Chaff (Moskewicz et al., DAC 2001).

Features: two-watched-literal unit propagation, first-UIP conflict-clause
learning with clause minimization, VSIDS-like variable activities with a
lazy max-heap decision queue, phase saving, Luby restarts, and
activity-based learned-clause deletion.  This is the reproduction's
substitute for the Chaff SAT-checker used in the paper; absolute speed
differs (pure Python), the algorithmic behaviour does not.

Implementation notes: assignments are stored as small integers
(0 unassigned, +1 true, -1 false) indexed by variable, so the value of a
literal ``lit`` is ``assigns[|lit|] * sign(lit)``; the propagation loop
inlines these tests — they account for the bulk of the runtime.

Proof logging (``log_proof=True``): the solver records a DRUP clause
proof — every learned clause (post-minimization, including learned
units), every learned-clause deletion of :meth:`Solver._reduce_learned`,
and the final empty clause on UNSAT — as ``("a"|"d", literals)`` steps on
:attr:`SatResult.proof`.  Logging is **off by default** and the hot
propagation loop is untouched either way; only the (comparatively rare)
conflict-analysis and clause-deletion paths test the flag.  The proof is
validated by the *independent* reverse-unit-propagation checker in
:mod:`repro.witness.drup`, which shares no code with this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..guard.deadline import current_deadline
from ..obs.tracer import current_tracer
from .cnf import Cnf

__all__ = ["SatResult", "Solver", "solve_cnf"]

#: Propagations between wall-clock/deadline checks in the main loop.  The
#: conflict path also checks, but a propagation-heavy run with few
#: conflicts would otherwise never look at the clock at all.
_PROP_CHECK_INTERVAL = 2048

#: Rough per-learned-clause overhead in bytes (clause object + watch-list
#: entries), on top of 8 bytes per literal; charged to the ambient
#: memory budget.
_CLAUSE_BYTES = 88


@dataclass
class SatResult:
    """Outcome of a SAT run."""

    status: str  # "sat", "unsat" or "unknown"
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    #: deepest decision level reached (0 when the instance propagates out).
    max_decision_level: int = 0
    cpu_seconds: float = 0.0
    #: DRUP proof steps ``("a"|"d", literals)`` when the solver ran with
    #: ``log_proof=True``; ``None`` otherwise.  Only meaningful for
    #: ``"unsat"`` outcomes (the final step is then the empty clause).
    proof: Optional[List[Tuple[str, Tuple[int, ...]]]] = None
    #: for ``"unsat"`` under assumptions (incremental solving): the
    #: subset of the assumption literals responsible for the failure.
    #: ``None`` for plain unsatisfiability or non-assumption runs.
    core: Optional[Tuple[int, ...]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class _Clause:
    """A clause with an activity score; literals[0:2] are watched."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


class Solver:
    """CDCL solver over a :class:`repro.sat.cnf.Cnf` instance."""

    def __init__(self, cnf: Cnf, log_proof: bool = False) -> None:
        self.num_vars = cnf.num_vars
        #: DRUP step log, or None when proof logging is off (the default).
        self._proof: Optional[List[Tuple[str, Tuple[int, ...]]]] = (
            [] if log_proof else None
        )
        # 1-indexed variable state; assigns holds 0 / +1 / -1.
        self.assigns: List[int] = [0] * (self.num_vars + 1)
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[_Clause]] = [None] * (self.num_vars + 1)
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        self.saved_phase: List[int] = [-1] * (self.num_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.queue_head = 0
        self.watches: Dict[int, List[_Clause]] = {}
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.ok = True
        self.stats = SatResult(status="unknown")
        #: amortized clause-activity rescales performed (see
        #: :meth:`_rescale_clause_activities`); exposed for regression
        #: tests asserting bounded per-conflict bump work.
        self._activity_rescales = 0
        # Lazy decision heap of (-activity, var); stale entries skipped.
        self._heap: List[Tuple[float, int]] = []
        for var in range(1, self.num_vars + 1):
            self._heap.append((0.0, var))
        for clause in cnf.clauses:
            if not self._add_clause(list(clause)):
                self.ok = False
                break

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------

    def _add_clause(self, literals: List[int]) -> bool:
        """Attach a problem clause; False when it makes the instance unsat."""
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError(
                    f"clause literal {lit} is outside the variable range "
                    f"1..{self.num_vars}"
                )
        literals = sorted(set(literals), key=abs)
        seen = set(literals)
        if any(-lit in seen for lit in literals):
            return True  # tautology
        assigns = self.assigns
        simplified = []
        for lit in literals:
            value = assigns[lit] if lit > 0 else -assigns[-lit]
            if value > 0:
                return True  # satisfied at level 0
            if value == 0:
                simplified.append(lit)
        literals = simplified
        if not literals:
            return False
        if len(literals) == 1:
            return self._enqueue(literals[0], None)
        clause = _Clause(literals, False)
        self.clauses.append(clause)
        self.watches.setdefault(-literals[0], []).append(clause)
        self.watches.setdefault(-literals[1], []).append(clause)
        return True

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        var = lit if lit > 0 else -lit
        current = self.assigns[var]
        if current != 0:
            return (current > 0) == (lit > 0)
        self.assigns[var] = 1 if lit > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    # ------------------------------------------------------------------
    # Propagation (hot path — values inlined)
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Propagate the queue; returns a conflicting clause or None."""
        assigns = self.assigns
        level = self.level
        reason = self.reason
        trail = self.trail
        watches = self.watches
        trail_lim_len_getter = self.trail_lim
        while self.queue_head < len(trail):
            lit = trail[self.queue_head]
            self.queue_head += 1
            self.stats.propagations += 1
            watch_list = watches.get(lit)
            if not watch_list:
                continue
            kept: List[_Clause] = []
            conflict: Optional[_Clause] = None
            index = 0
            total = len(watch_list)
            while index < total:
                clause = watch_list[index]
                index += 1
                literals = clause.literals
                if literals[0] == -lit:
                    literals[0] = literals[1]
                    literals[1] = -lit
                first = literals[0]
                first_value = assigns[first] if first > 0 else -assigns[-first]
                if first_value > 0:
                    kept.append(clause)
                    continue
                moved = False
                for slot in range(2, len(literals)):
                    candidate = literals[slot]
                    cand_value = (
                        assigns[candidate] if candidate > 0 else -assigns[-candidate]
                    )
                    if cand_value >= 0:
                        literals[1] = candidate
                        literals[slot] = -lit
                        watches.setdefault(-candidate, []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if first_value < 0:
                    kept.extend(watch_list[index:])
                    conflict = clause
                    break
                # Unit: enqueue `first` (inlined _enqueue fast path).
                var = first if first > 0 else -first
                assigns[var] = 1 if first > 0 else -1
                level[var] = len(trail_lim_len_getter)
                reason[var] = clause
                trail.append(first)
            watches[lit] = kept
            if conflict is not None:
                self.queue_head = len(trail)
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit: Optional[int] = None
        clause: Optional[_Clause] = conflict
        trail_index = len(self.trail) - 1
        current_level = len(self.trail_lim)

        while True:
            assert clause is not None
            self._bump_clause(clause)
            for reason_lit in clause.literals:
                if lit is not None and reason_lit == lit:
                    continue
                var = reason_lit if reason_lit > 0 else -reason_lit
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(reason_lit)
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            trail_index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            clause = self.reason[var]

        learnt = self._minimize(learnt, seen)
        if len(learnt) == 1:
            return learnt, 0
        back_level = max(self.level[abs(l)] for l in learnt[1:])
        for slot in range(1, len(learnt)):
            if self.level[abs(learnt[slot])] == back_level:
                learnt[1], learnt[slot] = learnt[slot], learnt[1]
                break
        return learnt, back_level

    def _minimize(self, learnt: List[int], seen: List[bool]) -> List[int]:
        """Drop literals implied by the rest of the clause (local check)."""
        for lit in learnt[1:]:
            seen[abs(lit)] = True
        minimized = [learnt[0]]
        for lit in learnt[1:]:
            reason = self.reason[abs(lit)]
            if reason is None:
                minimized.append(lit)
                continue
            if any(
                abs(other) != abs(lit)
                and not seen[abs(other)]
                and self.level[abs(other)] > 0
                for other in reason.literals
            ):
                minimized.append(lit)
        for lit in learnt[1:]:
            seen[abs(lit)] = False
        return minimized

    def _bump_var(self, var: int) -> None:
        activity = self.activity[var] + self.var_inc
        self.activity[var] = activity
        heappush(self._heap, (-activity, var))
        if activity > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
            self._heap = [
                (-self.activity[v], v)
                for v in range(1, self.num_vars + 1)
                if self.assigns[v] == 0
            ]
            self._heap.sort()

    def _bump_clause(self, clause: _Clause) -> None:
        # O(1): rescaling is amortized onto the conflict path (see
        # _rescale_clause_activities), triggered by cla_inc alone, so a
        # saturated activity never makes every bump O(learned).
        if clause.learned:
            clause.activity += self.cla_inc

    def _rescale_clause_activities(self) -> None:
        """Uniformly rescale learned-clause activities.

        Called from the conflict path when ``cla_inc`` saturates.  Since
        every activity is a sum of past ``cla_inc`` values, bounding
        ``cla_inc`` bounds them all; the uniform factor preserves the
        relative order :meth:`_reduce_learned` sorts by.
        """
        for learned in self.learned:
            learned.activity *= 1e-20
        self.cla_inc *= 1e-20
        self._activity_rescales += 1

    # ------------------------------------------------------------------
    # Backtracking and decisions
    # ------------------------------------------------------------------

    def _backtrack(self, back_level: int) -> None:
        if len(self.trail_lim) <= back_level:
            return
        boundary = self.trail_lim[back_level]
        assigns = self.assigns
        heap = self._heap
        activity = self.activity
        for lit in reversed(self.trail[boundary:]):
            var = lit if lit > 0 else -lit
            self.saved_phase[var] = assigns[var]
            assigns[var] = 0
            self.reason[var] = None
            heappush(heap, (-activity[var], var))
        del self.trail[boundary:]
        del self.trail_lim[back_level:]
        self.queue_head = len(self.trail)

    def _decide(self) -> bool:
        assigns = self.assigns
        activity = self.activity
        heap = self._heap
        while heap:
            neg_activity, var = heappop(heap)
            if assigns[var] != 0 or -neg_activity != activity[var]:
                continue  # stale heap entry
            self.trail_lim.append(len(self.trail))
            lit = var if self.saved_phase[var] > 0 else -var
            self._enqueue(lit, None)
            self.stats.decisions += 1
            if len(self.trail_lim) > self.stats.max_decision_level:
                self.stats.max_decision_level = len(self.trail_lim)
            return True
        # Heap exhausted: fall back to a scan for any unassigned variable.
        for var in range(1, self.num_vars + 1):
            if assigns[var] == 0:
                self.trail_lim.append(len(self.trail))
                lit = var if self.saved_phase[var] > 0 else -var
                self._enqueue(lit, None)
                self.stats.decisions += 1
                if len(self.trail_lim) > self.stats.max_decision_level:
                    self.stats.max_decision_level = len(self.trail_lim)
                return True
        return False

    def _learned_limit(self) -> int:
        """Learned-clause count that triggers a reduction sweep.

        Without an ambient memory budget this is the historical 4000.
        Under a :class:`repro.guard.memory.MemoryBudget` the limit
        shrinks with the remaining headroom so the learned database
        cannot single-handedly exhaust the budget, with a floor of 256
        (a solver that may keep no learned clauses cannot learn).
        """
        budget = current_deadline().memory
        if budget is None:
            return 4000
        headroom = budget.max_bytes - budget.usage_bytes(sample=False)
        per_clause = _CLAUSE_BYTES + 8 * 16  # assume ~16-literal clauses
        if headroom <= 0:
            return 256
        return int(max(256, min(4000, headroom // (2 * per_clause))))

    def _reduce_learned(self) -> None:
        if len(self.learned) < self._learned_limit():
            return
        self.learned.sort(key=lambda clause: clause.activity, reverse=True)
        keep = len(self.learned) // 2
        locked = {
            id(self.reason[abs(lit)])
            for lit in self.trail
            if self.reason[abs(lit)] is not None
        }
        survivors = []
        removed = set()
        for position, clause in enumerate(self.learned):
            if position < keep or id(clause) in locked or len(clause.literals) <= 2:
                survivors.append(clause)
            else:
                removed.add(id(clause))
                if self._proof is not None:
                    self._proof.append(("d", tuple(clause.literals)))
        if not removed:
            return
        self.learned = survivors
        for lit, watch_list in self.watches.items():
            self.watches[lit] = [c for c in watch_list if id(c) not in removed]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> SatResult:
        """Run the solver, optionally bounded by conflicts or wall time.

        The run is recorded as a ``"sat"`` span (with the full counter set)
        on the ambient tracer; a no-op unless one is installed.
        """
        with current_tracer().span("sat") as span:
            result = self._run(max_conflicts, max_seconds)
            span.add("sat.variables", self.num_vars)
            span.add("sat.clauses", len(self.clauses))
            span.add("sat.decisions", result.decisions)
            span.add("sat.conflicts", result.conflicts)
            span.add("sat.propagations", result.propagations)
            span.add("sat.restarts", result.restarts)
            span.add("sat.learned_clauses", result.learned_clauses)
            span.add("sat.max_decision_level", result.max_decision_level)
            if result.proof is not None:
                span.add("sat.proof_steps", len(result.proof))
            return result

    def _run(
        self,
        max_conflicts: Optional[int],
        max_seconds: Optional[float],
    ) -> SatResult:
        start = time.perf_counter()
        result = self.stats
        if not self.ok:
            # An input clause was already falsified by the input units
            # alone; the empty clause is reverse-unit-propagation
            # derivable directly from the original CNF.
            if self._proof is not None:
                self._proof.append(("a", ()))
                result.proof = self._proof
            result.status = "unsat"
            result.cpu_seconds = time.perf_counter() - start
            return result

        restart_base = 100
        luby_index = 1
        conflicts_until_restart = restart_base * _luby(luby_index)
        conflicts_since_restart = 0
        deadline = current_deadline()
        deadline.check("sat")
        next_prop_check = _PROP_CHECK_INTERVAL

        while True:
            conflict = self._propagate()
            if result.propagations >= next_prop_check:
                # The clock must be consulted on the propagation counter
                # too: a propagation-heavy run with few conflicts would
                # never reach the conflict path's check below.
                next_prop_check = result.propagations + _PROP_CHECK_INTERVAL
                if max_seconds is not None and \
                        time.perf_counter() - start > max_seconds:
                    result.status = "unknown"
                    break
                deadline.check("sat")
            if conflict is not None:
                result.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    if self._proof is not None:
                        self._proof.append(("a", ()))
                    result.status = "unsat"
                    break
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if self._proof is not None:
                    self._proof.append(("a", tuple(learnt)))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        if self._proof is not None:
                            self._proof.append(("a", ()))
                        result.status = "unsat"
                        break
                else:
                    clause = _Clause(learnt, learned=True)
                    clause.activity = self.cla_inc
                    self.learned.append(clause)
                    self.watches.setdefault(-learnt[0], []).append(clause)
                    self.watches.setdefault(-learnt[1], []).append(clause)
                    self._enqueue(learnt[0], clause)
                    result.learned_clauses += 1
                    deadline.charge(bytes_=_CLAUSE_BYTES + 8 * len(learnt))
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                if self.cla_inc > 1e20:
                    self._rescale_clause_activities()
                if max_conflicts is not None and result.conflicts >= max_conflicts:
                    result.status = "unknown"
                    break
                if max_seconds is not None and result.conflicts % 256 == 0:
                    if time.perf_counter() - start > max_seconds:
                        result.status = "unknown"
                        break
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                conflicts_since_restart = 0
                luby_index += 1
                conflicts_until_restart = restart_base * _luby(luby_index)
                result.restarts += 1
                self._backtrack(0)
                self._reduce_learned()
                continue

            if not self._decide():
                result.status = "sat"
                result.model = {
                    var: self.assigns[var] > 0
                    for var in range(1, self.num_vars + 1)
                    if self.assigns[var] != 0
                }
                break

        result.cpu_seconds = time.perf_counter() - start
        result.proof = self._proof
        return result


def _luby(index: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    ``index`` is 1-based.  Standard MiniSat-style computation: find the
    subsequence containing ``index`` and the position within it.
    """
    x = index - 1
    size, level = 1, 0
    while size < x + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        level -= 1
        x = x % size
    return 1 << level


def solve_cnf(
    cnf: Cnf,
    max_conflicts: Optional[int] = None,
    max_seconds: Optional[float] = None,
    log_proof: bool = False,
) -> SatResult:
    """Solve ``cnf`` with a fresh :class:`Solver` instance.

    With ``log_proof=True`` the solver records a DRUP clause proof on
    ``result.proof`` (see the module docstring); off by default.
    """
    return Solver(cnf, log_proof=log_proof).solve(
        max_conflicts=max_conflicts, max_seconds=max_seconds
    )
