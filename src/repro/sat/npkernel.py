"""Vectorized root-level unit propagation (the optional numpy kernel).

The pure-Python watched-literal loop of :mod:`repro.sat.solver` costs a
few microseconds per propagation — fine inside the search, but the very
first thing every solve does is flush the *root* cascade: the input unit
clauses ripple through the Tseitin structure one literal at a time.  On
the large CNFs of the wide configurations that cascade is thousands of
propagations before the first decision.

This module replays that cascade as whole-array work: the clause
database is flattened once into a CSR-style layout (one literal array
plus clause offsets) and each round recomputes, vectorized,

* the value of every literal under the current assignment,
* per-clause false counts and satisfied flags (``np.add.reduceat``),
* the set of conflicting and unit clauses,

then assigns all discovered units at once and repeats to fixpoint.  A
round is O(total literals) of C-speed array math instead of O(cascade)
Python bytecode, which wins whenever the pending root queue is long.

Soundness note for callers: bulk assignment bypasses the solver's watch
lists, so after a fixpoint the caller MUST rebuild its watches (see
:meth:`repro.sat.incremental.IncrementalSolver._rebuild_watches`) and
re-run its own propagation once from the start of the trail.  The kernel
may legitimately *miss* propagations past ``max_rounds`` — it is an
accelerator, never the authority: anything it misses is picked up by the
watched-literal rescan, and anything it derives is checked again there.

numpy is optional.  When it is not importable :data:`HAVE_NUMPY` is
False and :func:`propagate_root` returns ``None``, telling the caller to
take the ordinary watched path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import SolverError

try:  # pragma: no cover - exercised implicitly by HAVE_NUMPY tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None  # type: ignore[assignment]

__all__ = ["HAVE_NUMPY", "KernelResult", "RootPropagationKernel",
           "propagate_root"]

#: True when the vectorized kernel can run at all.
HAVE_NUMPY = _np is not None

#: Default bound on fixpoint rounds.  Each round is a full O(literals)
#: recompute, so a very deep implication chain is better finished by the
#: watched loop; 64 rounds covers the Tseitin root cascades we see while
#: bounding the worst case.
DEFAULT_MAX_ROUNDS = 64


class KernelResult:
    """Outcome of one root fixpoint run."""

    __slots__ = ("implied", "conflict", "rounds", "propagations")

    def __init__(
        self,
        implied: List[int],
        conflict: bool,
        rounds: int,
        propagations: int,
    ) -> None:
        #: newly implied root literals, in derivation order.
        self.implied = implied
        #: True when the root assignment is contradictory (UNSAT).
        self.conflict = conflict
        self.rounds = rounds
        self.propagations = propagations


class RootPropagationKernel:
    """CSR layout of a clause database for counting-based propagation.

    ``clauses`` must contain only clauses of two or more literals (the
    solver keeps unit input clauses on the trail, never in the database),
    so the ``reduceat`` segments are all non-empty.
    """

    def __init__(
        self, clauses: Sequence[Sequence[int]], num_vars: int
    ) -> None:
        if _np is None:  # pragma: no cover - guarded by HAVE_NUMPY
            raise SolverError("numpy is not available")
        self.num_vars = num_vars
        self.num_clauses = len(clauses)
        flat: List[int] = []
        lengths: List[int] = []
        for clause in clauses:
            if len(clause) < 2:
                raise ValueError(
                    "the kernel propagates clauses of >= 2 literals; "
                    "units belong on the trail"
                )
            flat.extend(clause)
            lengths.append(len(clause))
        self._lit = _np.asarray(flat, dtype=_np.int64)
        self._var = _np.abs(self._lit)
        self._sign = _np.sign(self._lit).astype(_np.int8)
        self._lengths = _np.asarray(lengths, dtype=_np.int64)
        self._offsets = _np.zeros(self.num_clauses, dtype=_np.int64)
        if self.num_clauses > 1:
            _np.cumsum(self._lengths[:-1], out=self._offsets[1:])

    def fixpoint(
        self,
        assigns: Sequence[int],
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> KernelResult:
        """Propagate ``assigns`` (0/+1/-1 per variable, 1-indexed) to a
        fixpoint; returns the implied literals without mutating the
        caller's assignment."""
        implied: List[int] = []
        conflict = False
        rounds = 0
        if self.num_clauses == 0:
            return KernelResult(implied, conflict, rounds, 0)
        a = _np.asarray(assigns, dtype=_np.int8).copy()
        for _ in range(max(1, max_rounds)):
            rounds += 1
            vals = a[self._var] * self._sign
            false_counts = _np.add.reduceat(
                (vals < 0).astype(_np.int64), self._offsets
            )
            satisfied = _np.add.reduceat(
                (vals > 0).astype(_np.int64), self._offsets
            ) > 0
            open_clauses = ~satisfied
            if bool(_np.any(open_clauses & (false_counts == self._lengths))):
                conflict = True
                break
            unit_clauses = open_clauses & (false_counts == self._lengths - 1)
            if not bool(unit_clauses.any()):
                break
            candidate_mask = (
                _np.repeat(unit_clauses, self._lengths) & (vals == 0)
            )
            fresh = 0
            for lit in self._lit[candidate_mask].tolist():
                var = lit if lit > 0 else -lit
                want = 1 if lit > 0 else -1
                current = int(a[var])
                if current == 0:
                    a[var] = want
                    implied.append(lit)
                    fresh += 1
                elif current != want:
                    # Two unit clauses disagree on the variable.
                    conflict = True
                    break
            if conflict or fresh == 0:
                break
        return KernelResult(implied, conflict, rounds, len(implied))


def propagate_root(
    clauses: Sequence[Sequence[int]],
    num_vars: int,
    assigns: Sequence[int],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> Optional[KernelResult]:
    """One-shot convenience wrapper; ``None`` when numpy is unavailable."""
    if not HAVE_NUMPY or not clauses:
        return None
    kernel = RootPropagationKernel(clauses, num_vars)
    return kernel.fixpoint(assigns, max_rounds=max_rounds)
