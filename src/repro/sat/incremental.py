"""Incremental, assumption-based SAT solving with session reuse.

The campaign grid solves many closely related CNFs: for a fixed rewrite
depth the rewritten correspondence formula is *ROB-size independent*, so
adjacent (N, k) grid points translate to byte-identical clause sets, and
budget-escalation retries re-solve the exact same CNF.  Solving each one
cold throws away everything the previous run learned.  This module keeps
a :class:`Solver` alive between calls:

* :class:`IncrementalSolver` adds ``solve(assumptions=[...])`` in the
  MiniSat style — assumptions are installed as pseudo-decisions at
  levels ``1..m`` (one level per assumption, with empty levels for
  assumptions already true, so *assumption index == decision level*),
  the CDCL search runs unchanged above them, and learned clauses,
  variable activities and saved phases persist across calls.  When an
  assumption is falsified the solver returns ``"unsat"`` with
  :attr:`SatResult.core` naming the responsible subset of the
  assumptions (MiniSat's ``analyzeFinal`` reason-cone walk).
* :class:`SessionPool` is an LRU cache of live solvers keyed by the CNF
  digest, installed ambiently (:func:`use_session_pool`) so the encode
  layer can route ``solve`` calls through it without plumbing.

DRUP soundness across calls
---------------------------

Learned clauses are resolvents of database clauses only: assumptions
enter the trail as reasonless decisions, so first-UIP analysis can never
resolve on them — they appear *in* learnt clauses as ordinary literals
but contribute no clauses to the resolution.  Every learnt clause is
therefore implied by the CNF alone and lives in one shared, append-only
journal (``self._proof``: learned additions plus the deletions of
:meth:`Solver._reduce_learned`).  Each call's :attr:`SatResult.proof` is
a *copy* of that journal plus a per-call tail:

* real UNSAT (level-0 conflict): ``journal + [("a", ())]`` — checkable
  against the original CNF;
* UNSAT under assumptions: ``journal + [("a", core_clause), ("a", ())]``
  — checkable against the CNF *plus one unit clause per assumption*
  (:func:`repro.witness.drup.cnf_with_assumptions`).  The core clause is
  reverse-unit-propagation derivable because it mirrors the propagation
  cone that falsified the assumption; the empty clause then follows from
  the assumption units.

Reverse unit propagation is monotone under clause addition, so journal
entries recorded in earlier calls stay valid in every later view.

The numpy root kernel
---------------------

On the first call of a large instance the pending root-unit cascade is
replayed by :mod:`repro.sat.npkernel` (when numpy is importable) as
vectorized whole-array rounds instead of the per-literal watched loop.
The kernel bypasses watch lists, so afterwards the watches are rebuilt
(:meth:`IncrementalSolver._rebuild_watches`) and ``queue_head`` is reset
to re-scan the trail — the exact watched pass re-validates everything
the kernel did and finishes anything it left (the kernel is bounded in
rounds and may legitimately under-propagate).  Root conflicts are left
for the watched pass to derive, keeping the UNSAT path byte-identical to
the non-kernel one.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from itertools import chain
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import SolverError
from ..guard.deadline import current_deadline
from ..obs.tracer import current_tracer
from .cnf import Cnf
from .npkernel import HAVE_NUMPY, RootPropagationKernel
from .solver import (
    _CLAUSE_BYTES,
    _PROP_CHECK_INTERVAL,
    SatResult,
    Solver,
    _Clause,
    _luby,
)

__all__ = [
    "IncrementalSolver",
    "SatSession",
    "SessionPool",
    "cnf_digest",
    "current_session_pool",
    "use_session_pool",
]

#: Below this many database clauses the vectorized root pass costs more
#: than the watched loop it replaces (array setup is O(total literals)).
_KERNEL_MIN_CLAUSES = 256


class IncrementalSolver(Solver):
    """A :class:`Solver` whose :meth:`solve` can be called repeatedly.

    State persists between calls: learned clauses (and their journal
    entries), variable activities, saved phases.  Between calls the
    solver sits at decision level 0.  ``use_kernel=False`` disables the
    numpy root pass regardless of numpy availability.
    """

    def __init__(
        self, cnf: Cnf, log_proof: bool = False, use_kernel: bool = True
    ) -> None:
        super().__init__(cnf, log_proof=log_proof)
        #: latched *real* unsatisfiability (never set by failed
        #: assumptions, which are a property of the call, not the CNF).
        self._unsat = not self.ok
        self._calls = 0
        self._use_kernel = use_kernel and HAVE_NUMPY
        self._kernel_propagations = 0

    # ------------------------------------------------------------------
    # Incremental clause addition
    # ------------------------------------------------------------------

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a problem clause between calls.

        Returns False (and latches the instance unsat) when the clause
        is falsified at the root.  Callers certifying proofs must hand
        the checker the extended CNF.
        """
        if self._unsat or not self.ok:
            return False
        self._backtrack(0)
        if not self._add_clause(list(literals)):
            self.ok = False
            self._unsat = True
            return False
        return True

    # ------------------------------------------------------------------
    # Solving under assumptions
    # ------------------------------------------------------------------

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        """One incremental call, optionally under ``assumptions``.

        Recorded as a ``"sat"`` span like the base solver, plus
        ``sat.incremental_calls`` / ``sat.kernel_propagations`` counters.
        """
        assumptions = tuple(assumptions)
        with current_tracer().span("sat") as span:
            result = self._run_incremental(
                assumptions, max_conflicts, max_seconds
            )
            span.add("sat.variables", self.num_vars)
            span.add("sat.clauses", len(self.clauses))
            span.add("sat.decisions", result.decisions)
            span.add("sat.conflicts", result.conflicts)
            span.add("sat.propagations", result.propagations)
            span.add("sat.restarts", result.restarts)
            span.add("sat.learned_clauses", result.learned_clauses)
            span.add("sat.max_decision_level", result.max_decision_level)
            span.add("sat.incremental_calls", 1)
            if self._kernel_propagations:
                span.add(
                    "sat.kernel_propagations", self._kernel_propagations
                )
            if result.proof is not None:
                span.add("sat.proof_steps", len(result.proof))
            return result

    def _run_incremental(
        self,
        assumptions: Tuple[int, ...],
        max_conflicts: Optional[int],
        max_seconds: Optional[float],
    ) -> SatResult:
        start = time.perf_counter()
        self._calls += 1
        self._kernel_propagations = 0
        for lit in assumptions:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError(
                    f"assumption literal {lit} is outside the variable "
                    f"range 1..{self.num_vars}"
                )
        self.stats = SatResult(status="unknown")
        result = self.stats
        if self._unsat or not self.ok:
            result.status = "unsat"
            result.proof = self._proof_view((("a", ()),))
            result.cpu_seconds = time.perf_counter() - start
            return result

        deadline = current_deadline()
        deadline.check("sat")
        restart_base = 100
        luby_index = 1
        conflicts_until_restart = restart_base * _luby(luby_index)
        conflicts_since_restart = 0
        next_prop_check = _PROP_CHECK_INTERVAL

        if (
            self._use_kernel
            and not self.trail_lim
            and self.queue_head < len(self.trail)
            and len(self.clauses) + len(self.learned) >= _KERNEL_MIN_CLAUSES
        ):
            self._kernel_root_pass()

        while True:
            conflict = self._propagate()
            if result.propagations >= next_prop_check:
                next_prop_check = result.propagations + _PROP_CHECK_INTERVAL
                if max_seconds is not None and \
                        time.perf_counter() - start > max_seconds:
                    result.status = "unknown"
                    break
                deadline.check("sat")
            if conflict is not None:
                result.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    # Conflict below every assumption: the CNF itself is
                    # unsatisfiable.  Latch it.
                    self._unsat = True
                    result.status = "unsat"
                    result.proof = self._proof_view((("a", ()),))
                    break
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if self._proof is not None:
                    self._proof.append(("a", tuple(learnt)))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        result.status = "unsat"
                        result.proof = self._proof_view((("a", ()),))
                        break
                else:
                    clause = _Clause(learnt, learned=True)
                    clause.activity = self.cla_inc
                    self.learned.append(clause)
                    self.watches.setdefault(-learnt[0], []).append(clause)
                    self.watches.setdefault(-learnt[1], []).append(clause)
                    self._enqueue(learnt[0], clause)
                    result.learned_clauses += 1
                    deadline.charge(bytes_=_CLAUSE_BYTES + 8 * len(learnt))
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                if self.cla_inc > 1e20:
                    self._rescale_clause_activities()
                if max_conflicts is not None and \
                        result.conflicts >= max_conflicts:
                    result.status = "unknown"
                    break
                if max_seconds is not None and result.conflicts % 256 == 0:
                    if time.perf_counter() - start > max_seconds:
                        result.status = "unknown"
                        break
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                conflicts_since_restart = 0
                luby_index += 1
                conflicts_until_restart = restart_base * _luby(luby_index)
                result.restarts += 1
                self._backtrack(0)
                self._reduce_learned()
                continue

            # Install the next pending assumption (assumption index ==
            # decision level; restarts/backjumps pop them, this loop
            # reinstalls from wherever the trail now stands).
            installed = False
            failed: Optional[int] = None
            while len(self.trail_lim) < len(assumptions):
                deadline.tick("sat")
                lit = assumptions[len(self.trail_lim)]
                var = lit if lit > 0 else -lit
                value = self.assigns[var] if lit > 0 else -self.assigns[var]
                if value > 0:
                    # Already true: burn an empty level to keep the
                    # index == level correspondence.
                    self.trail_lim.append(len(self.trail))
                    continue
                if value < 0:
                    failed = lit
                    break
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                if len(self.trail_lim) > result.max_decision_level:
                    result.max_decision_level = len(self.trail_lim)
                installed = True
                break
            if failed is not None:
                core_clause = tuple(self._final_conflict(failed))
                result.status = "unsat"
                result.core = tuple(-l for l in core_clause)
                result.proof = self._proof_view(
                    (("a", core_clause), ("a", ()))
                )
                break
            if installed:
                continue

            if not self._decide():
                result.status = "sat"
                result.model = {
                    var: self.assigns[var] > 0
                    for var in range(1, self.num_vars + 1)
                    if self.assigns[var] != 0
                }
                break

        if result.proof is None:
            result.proof = self._proof_view(())
        result.cpu_seconds = time.perf_counter() - start
        self._backtrack(0)
        return result

    def _proof_view(
        self, tail: Sequence[Tuple[str, Tuple[int, ...]]]
    ) -> Optional[List[Tuple[str, Tuple[int, ...]]]]:
        """A per-call snapshot: shared journal copy + call-specific tail.

        The journal itself stays shared and append-only; handing out
        copies keeps earlier results immune to later calls.
        """
        if self._proof is None:
            return None
        return list(self._proof) + list(tail)

    def _final_conflict(self, failed: int) -> List[int]:
        """MiniSat ``analyzeFinal``: the clause of negated assumptions
        whose conjunction forced ``failed`` (a currently-false
        assumption literal) — i.e. the failure core, as a clause."""
        out = [-failed]
        if not self.trail_lim:
            return out
        seen = {failed if failed > 0 else -failed}
        for lit in reversed(self.trail[self.trail_lim[0]:]):
            var = lit if lit > 0 else -lit
            if var not in seen:
                continue
            seen.discard(var)
            reason = self.reason[var]
            if reason is None:
                out.append(-lit)
            else:
                for other in reason.literals:
                    other_var = other if other > 0 else -other
                    if other_var != var and self.level[other_var] > 0:
                        seen.add(other_var)
        return out

    # ------------------------------------------------------------------
    # numpy root pass
    # ------------------------------------------------------------------

    def _kernel_root_pass(self) -> None:
        clauses = [c.literals for c in chain(self.clauses, self.learned)]
        kernel = RootPropagationKernel(clauses, self.num_vars)
        outcome = kernel.fixpoint(self.assigns)
        if outcome.conflict or not outcome.implied:
            # Root conflicts (and no-ops) are left to the exact watched
            # pass, which derives them with proper bookkeeping.
            return
        for lit in outcome.implied:
            self._enqueue(lit, None)
        self._kernel_propagations = outcome.propagations
        self._rebuild_watches()

    def _rebuild_watches(self) -> None:
        """Re-derive every clause's watched pair from the current root
        assignment and schedule a full trail re-scan.

        Ranking true < unassigned < false puts the most useful literals
        in the watched slots; any clause left watching a false literal
        has that literal's negation on the trail, so the ``queue_head=0``
        re-scan visits it and restores the watch invariant (or finds the
        unit/conflict the kernel implied)."""
        assigns = self.assigns

        def rank(lit: int) -> int:
            value = assigns[lit] if lit > 0 else -assigns[-lit]
            if value > 0:
                return 0
            if value == 0:
                return 1
            return 2

        watches: Dict[int, List[_Clause]] = {}
        for clause in chain(self.clauses, self.learned):
            literals = clause.literals
            literals.sort(key=rank)
            watches.setdefault(-literals[0], []).append(clause)
            watches.setdefault(-literals[1], []).append(clause)
        self.watches = watches
        self.queue_head = 0


# ----------------------------------------------------------------------
# Session pool
# ----------------------------------------------------------------------


def cnf_digest(cnf: Cnf) -> str:
    """Content digest of a CNF (structure only — names are metadata)."""
    hasher = hashlib.sha256()
    hasher.update(f"p cnf {cnf.num_vars} {len(cnf.clauses)}\n".encode())
    for clause in cnf.clauses:
        hasher.update(" ".join(map(str, clause)).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


class SatSession:
    """A live incremental solver bound to one CNF digest."""

    __slots__ = ("digest", "log_proof", "solver", "calls")

    def __init__(
        self, digest: str, log_proof: bool, solver: IncrementalSolver
    ) -> None:
        self.digest = digest
        self.log_proof = log_proof
        self.solver = solver
        self.calls = 0


class SessionPool:
    """LRU pool of incremental solver sessions keyed by CNF digest.

    The campaign grid hits the same digest repeatedly (ROB-size-
    independent rewritten formulas; budget-escalation retries), so a
    lookup that lands on a live session resumes with every learned
    clause, activity and phase intact.  Eviction is size-based LRU; a
    pool is confined to one process (sessions are not picklable) —
    parallel campaign workers each build their own.

    Hits/misses/evictions are mirrored onto the ambient tracer's current
    span as ``sat.session_*`` counters.
    """

    def __init__(self, max_sessions: int = 8, use_kernel: bool = True) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self._sessions: "OrderedDict[Tuple[str, bool], SatSession]" = (
            OrderedDict()
        )
        self.max_sessions = max_sessions
        self.use_kernel = use_kernel
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def session(self, cnf: Cnf, log_proof: bool = False) -> SatSession:
        """The live session for ``cnf``, created on first sight.

        Proof-logging and non-logging sessions are kept distinct: a
        certifying call must not inherit a journal-less solver.
        """
        key = (cnf_digest(cnf), bool(log_proof))
        tracer = current_tracer()
        existing = self._sessions.get(key)
        if existing is not None:
            self.hits += 1
            tracer.add("sat.session_hits", 1)
            self._sessions.move_to_end(key)
            return existing
        self.misses += 1
        tracer.add("sat.session_misses", 1)
        solver = IncrementalSolver(
            cnf, log_proof=log_proof, use_kernel=self.use_kernel
        )
        session = SatSession(key[0], bool(log_proof), solver)
        self._sessions[key] = session
        for _ in range(len(self._sessions) - self.max_sessions):
            self._sessions.popitem(last=False)
            self.evictions += 1
            tracer.add("sat.session_evictions", 1)
        return session

    def solve(
        self,
        cnf: Cnf,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        log_proof: bool = False,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        """Solve ``cnf`` through its (possibly resumed) session."""
        session = self.session(cnf, log_proof=log_proof)
        session.calls += 1
        return session.solver.solve(
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
            assumptions=assumptions,
        )


_SESSION_POOL: ContextVar[Optional[SessionPool]] = ContextVar(
    "repro_sat_session_pool", default=None
)


def current_session_pool() -> Optional[SessionPool]:
    """The ambient session pool, or None when solving cold."""
    return _SESSION_POOL.get()


@contextmanager
def use_session_pool(
    pool: Optional[SessionPool],
) -> Iterator[Optional[SessionPool]]:
    """Install ``pool`` as the ambient session pool for a scope."""
    token = _SESSION_POOL.set(pool)
    try:
        yield pool
    finally:
        _SESSION_POOL.reset(token)
