"""SAT substrate: CNF databases, Tseitin translation and a CDCL solver.

The CDCL solver (:class:`repro.sat.Solver`) plays the role of the Chaff
SAT-checker in the paper's tool flow: the negated, propositionally encoded
correctness formula is proved unsatisfiable here.
"""

from .cnf import Cnf, parse_dimacs, to_dimacs
from .reference import solve_by_enumeration
from .solver import SatResult, Solver, solve_cnf
from .tseitin import TseitinResult, cnf_for_satisfiability, tseitin

__all__ = [
    "Cnf",
    "parse_dimacs",
    "to_dimacs",
    "solve_by_enumeration",
    "SatResult",
    "Solver",
    "solve_cnf",
    "TseitinResult",
    "cnf_for_satisfiability",
    "tseitin",
]
