"""SAT substrate: CNF databases, Tseitin translation and a CDCL solver.

The CDCL solver (:class:`repro.sat.Solver`) plays the role of the Chaff
SAT-checker in the paper's tool flow: the negated, propositionally encoded
correctness formula is proved unsatisfiable here.

On top of the one-shot solver sit the incremental layer
(:mod:`repro.sat.incremental`: assumption-based ``solve`` with learned
clauses persisting across calls, plus a digest-keyed session pool) and
the pluggable backend protocol (:mod:`repro.sat.backend`: the in-tree
CDCL as reference, optional python-sat / DIMACS-subprocess adapters).
"""

from .backend import (
    BACKENDS,
    DimacsSubprocessBackend,
    PySatBackend,
    ReferenceBackend,
    SatBackend,
    available_backends,
    current_backend,
    resolve_backend,
    use_backend,
)
from .cnf import Cnf, parse_dimacs, to_dimacs
from .incremental import (
    IncrementalSolver,
    SatSession,
    SessionPool,
    cnf_digest,
    current_session_pool,
    use_session_pool,
)
from .npkernel import HAVE_NUMPY
from .reference import solve_by_enumeration
from .solver import SatResult, Solver, solve_cnf
from .tseitin import TseitinResult, cnf_for_satisfiability, tseitin

__all__ = [
    "Cnf",
    "parse_dimacs",
    "to_dimacs",
    "solve_by_enumeration",
    "SatResult",
    "Solver",
    "solve_cnf",
    "TseitinResult",
    "cnf_for_satisfiability",
    "tseitin",
    "IncrementalSolver",
    "SatSession",
    "SessionPool",
    "cnf_digest",
    "current_session_pool",
    "use_session_pool",
    "SatBackend",
    "ReferenceBackend",
    "PySatBackend",
    "DimacsSubprocessBackend",
    "BACKENDS",
    "available_backends",
    "resolve_backend",
    "current_backend",
    "use_backend",
    "HAVE_NUMPY",
]
