"""Event-driven term-level symbolic simulation.

The simulator assigns an EUFM expression to every signal.  Stepping the
clock evaluates the combinational logic and captures latch inputs.  The
evaluation is *event-driven*: a component is re-evaluated only when one of
its input expressions actually changed since its last evaluation — thanks
to hash-consing, "changed" is a constant-time identity test.  This is the
cone-of-influence optimization the paper describes for TLSim (Sect. 7):
during flushing, only one computation slice is active per step, so only
its cone is re-evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


from ..errors import ReproError
from ..eufm.ast import Expr, Formula, Term
from ..guard.deadline import current_deadline
from ..obs.tracer import current_tracer
from .circuit import Circuit
from .components import Component, Latch
from .signals import FORMULA, MEMORY, Signal

__all__ = ["Simulator", "SimulationError", "SimulatorStats"]


class SimulationError(ReproError, RuntimeError):
    """A signal was read before being driven or initialized.

    Subclasses ``RuntimeError`` for backward compatibility, but is part of
    the :class:`~repro.errors.ReproError` taxonomy so the campaign runner
    treats simulator failures as structured (non-retryable) outcomes.
    """


@dataclass
class SimulatorStats:
    """Work counters, used by the Table 1 benchmark."""

    steps: int = 0
    component_evaluations: int = 0
    components_skipped: int = 0


class Simulator:
    """Symbolic simulator for one :class:`Circuit`."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.freeze()
        self.circuit = circuit
        self.values: Dict[Signal, Expr] = {}
        self.stats = SimulatorStats()
        self._order = circuit.combinational_order()
        self._position = {c: i for i, c in enumerate(self._order)}
        # Last-seen input expressions per component, for change detection.
        self._last_inputs: Dict[Component, tuple] = {}
        self._dirty: Set[Component] = set(self._order)
        # Counter values already pushed to the tracer (see publish_counters).
        self._published = SimulatorStats()

    # ------------------------------------------------------------------
    # State and input management
    # ------------------------------------------------------------------

    def init_state(self, assignments: Dict[Signal, Expr]) -> None:
        """Set the present-state value of latch outputs (initial state)."""
        state = set(self.circuit.state_signals)
        for signal, expr in assignments.items():
            if signal not in state:
                raise SimulationError(f"{signal.name!r} is not a latch output")
            self._set(signal, expr)

    def set_input(self, signal: Signal, expr: Expr) -> None:
        """Drive a primary input for the upcoming evaluation."""
        if self.circuit.driver_of(signal) is not None:
            raise SimulationError(f"{signal.name!r} is driven by the circuit")
        self._set(signal, expr)

    def set_inputs(self, assignments: Dict[Signal, Expr]) -> None:
        for signal, expr in assignments.items():
            self.set_input(signal, expr)

    def _set(self, signal: Signal, expr: Expr) -> None:
        _check_sort(signal, expr)
        old = self.values.get(signal)
        if old is expr:
            return
        self.values[signal] = expr
        for reader in self.circuit.readers_of(signal):
            if not isinstance(reader, Latch):
                self._dirty.add(reader)

    def peek(self, signal: Signal) -> Expr:
        """Current expression on ``signal`` (after :meth:`settle`)."""
        if signal not in self.values:
            raise SimulationError(f"{signal.name!r} has no value yet")
        return self.values[signal]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def settle(self) -> None:
        """Evaluate combinational logic (event-driven, topological order)."""
        if not self._dirty:
            return
        deadline = current_deadline()
        for component in self._order:
            if component not in self._dirty:
                self.stats.components_skipped += 1
                continue
            self._dirty.discard(component)
            inputs = tuple(self._require(s) for s in component.inputs)
            if self._last_inputs.get(component) == inputs:
                self.stats.components_skipped += 1
                continue
            self._last_inputs[component] = inputs
            self.stats.component_evaluations += 1
            deadline.tick("tlsim")
            outputs = component.evaluate(self.values)
            for signal, expr in outputs.items():
                self._set(signal, expr)

    def step(self) -> None:
        """One clock cycle: settle combinational logic, capture latches."""
        current_deadline().check("tlsim")
        self.settle()
        captured: Dict[Signal, Expr] = {}
        for latch in self.circuit.latches:
            captured[latch.out] = self._require(latch.data)
        for signal, expr in captured.items():
            self._set(signal, expr)
        self.stats.steps += 1
        current_tracer().add("tlsim.cycles", 1)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def publish_counters(self, prefix: str = "tlsim") -> None:
        """Push the work counters accumulated since the last publish onto
        the ambient tracer's current span (a no-op without a tracer)."""
        tracer = current_tracer()
        stats, last = self.stats, self._published
        tracer.add(
            f"{prefix}.component_evaluations",
            stats.component_evaluations - last.component_evaluations,
        )
        tracer.add(
            f"{prefix}.components_skipped",
            stats.components_skipped - last.components_skipped,
        )
        self._published = SimulatorStats(
            steps=stats.steps,
            component_evaluations=stats.component_evaluations,
            components_skipped=stats.components_skipped,
        )

    def _require(self, signal: Signal) -> Expr:
        if signal not in self.values:
            raise SimulationError(
                f"signal {signal.name!r} read before it was driven; "
                "set primary inputs and initial state first"
            )
        return self.values[signal]


def _check_sort(signal: Signal, expr: Expr) -> None:
    if signal.sort == FORMULA:
        if not isinstance(expr, Formula):
            raise SimulationError(
                f"control signal {signal.name!r} needs a formula"
            )
    else:
        if not isinstance(expr, Term):
            raise SimulationError(f"signal {signal.name!r} needs a term")
