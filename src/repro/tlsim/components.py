"""Components of the term-level structural HDL.

A component reads input signals and drives output signals with EUFM
expressions.  Combinational components recompute their outputs whenever an
input changes (the event-driven evaluation of the simulator); latches
capture their data input at the end of a step.

``Fn`` is the general combinational block: an arbitrary Python function
from input expressions to output expressions, used for per-slice processor
logic.  The convenience subclasses (gates, muxes, UF blocks, memory ports)
cover the common structural idioms and make circuit descriptions read like
a netlist.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ReproError
from ..eufm import builder
from ..eufm.ast import Expr, Formula, Term
from .signals import FORMULA, MEMORY, TERM, Signal

__all__ = [
    "Component",
    "Fn",
    "Latch",
    "AndGate",
    "OrGate",
    "NotGate",
    "Mux",
    "UFBlock",
    "UPBlock",
    "EqComparator",
    "MemRead",
    "MemWrite",
]


class Component:
    """Base class: a named block with input and output signals."""

    def __init__(
        self, name: str, inputs: Sequence[Signal], outputs: Sequence[Signal]
    ) -> None:
        if not name:
            raise ValueError("component needs a non-empty name")
        self.name = name
        self.inputs: Tuple[Signal, ...] = tuple(inputs)
        self.outputs: Tuple[Signal, ...] = tuple(outputs)

    def evaluate(self, values: Dict[Signal, Expr]) -> Dict[Signal, Expr]:
        """Compute output expressions from the input expressions."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Fn(Component):
    """A combinational block defined by a Python function.

    ``fn`` receives the input expressions (in declared order) and returns
    the output expression, or a tuple of expressions when the block drives
    several outputs.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Signal],
        outputs: Sequence[Signal],
        fn: Callable[..., object],
    ) -> None:
        super().__init__(name, inputs, outputs)
        self.fn = fn

    def evaluate(self, values: Dict[Signal, Expr]) -> Dict[Signal, Expr]:
        args = [values[signal] for signal in self.inputs]
        result = self.fn(*args)
        if len(self.outputs) == 1:
            result = (result,)
        if len(result) != len(self.outputs):
            raise ValueError(
                f"{self.name}: fn returned {len(result)} values for "
                f"{len(self.outputs)} outputs"
            )
        return dict(zip(self.outputs, result))


class Latch(Component):
    """A state element: output holds state; ``data`` is captured on step.

    The simulator treats latches specially — ``evaluate`` is never called;
    the declared input is the next-state signal and the single output is
    the present-state signal.
    """

    def __init__(self, name: str, data: Signal, out: Signal) -> None:
        if data.sort != out.sort:
            raise ValueError(f"latch {name}: sort mismatch {data} vs {out}")
        super().__init__(name, [data], [out])
        self.data = data
        self.out = out

    def evaluate(self, values: Dict[Signal, Expr]) -> Dict[Signal, Expr]:
        raise ReproError(
            "latches are stepped by the simulator, not evaluated"
        )


class AndGate(Fn):
    def __init__(self, name: str, inputs: Sequence[Signal], out: Signal) -> None:
        super().__init__(name, inputs, [out], lambda *args: builder.and_(*args))


class OrGate(Fn):
    def __init__(self, name: str, inputs: Sequence[Signal], out: Signal) -> None:
        super().__init__(name, inputs, [out], lambda *args: builder.or_(*args))


class NotGate(Fn):
    def __init__(self, name: str, input_: Signal, out: Signal) -> None:
        super().__init__(name, [input_], [out], builder.not_)


class Mux(Fn):
    """2-way multiplexer: ``out = select ? high : low``."""

    def __init__(
        self, name: str, select: Signal, high: Signal, low: Signal, out: Signal
    ) -> None:
        if out.sort == FORMULA:
            fn = lambda s, h, l: builder.ite_formula(s, h, l)
        else:
            fn = lambda s, h, l: builder.ite_term(s, h, l)
        super().__init__(name, [select, high, low], [out], fn)


class UFBlock(Fn):
    """A functional unit abstracted by an uninterpreted function."""

    def __init__(
        self, name: str, symbol: str, inputs: Sequence[Signal], out: Signal
    ) -> None:
        super().__init__(
            name, inputs, [out], lambda *args: builder.uf(symbol, args)
        )


class UPBlock(Fn):
    """A control unit abstracted by an uninterpreted predicate."""

    def __init__(
        self, name: str, symbol: str, inputs: Sequence[Signal], out: Signal
    ) -> None:
        super().__init__(
            name, inputs, [out], lambda *args: builder.up(symbol, args)
        )


class EqComparator(Fn):
    """Word-level equality comparator."""

    def __init__(self, name: str, lhs: Signal, rhs: Signal, out: Signal) -> None:
        super().__init__(name, [lhs, rhs], [out], builder.eq)


class MemRead(Fn):
    """A read port on a memory signal."""

    def __init__(self, name: str, mem: Signal, addr: Signal, out: Signal) -> None:
        super().__init__(name, [mem, addr], [out], builder.read)


class MemWrite(Fn):
    """A conditional write port: drives the next memory state."""

    def __init__(
        self,
        name: str,
        mem: Signal,
        enable: Signal,
        addr: Signal,
        data: Signal,
        out: Signal,
    ) -> None:
        def fn(mem_expr, enable_expr, addr_expr, data_expr):
            return builder.ite_term(
                enable_expr,
                builder.write(mem_expr, addr_expr, data_expr),
                mem_expr,
            )

        super().__init__(name, [mem, enable, addr, data], [out], fn)
