"""TLSim — an event-driven term-level symbolic simulator.

The reproduction's substitute for the TLSim tool used by the paper: a small
structural HDL (signals, gates, muxes, latches, memory ports, UF blocks)
and a simulator whose event-driven evaluation re-computes only the cone of
influence of changed signals — the optimization described in Sect. 7.
"""

from .circuit import Circuit, CircuitError
from .components import (
    AndGate,
    Component,
    EqComparator,
    Fn,
    Latch,
    MemRead,
    MemWrite,
    Mux,
    NotGate,
    OrGate,
    UFBlock,
    UPBlock,
)
from .signals import FORMULA, MEMORY, TERM, Signal
from .simulator import SimulationError, Simulator, SimulatorStats

__all__ = [
    "Circuit",
    "CircuitError",
    "AndGate",
    "Component",
    "EqComparator",
    "Fn",
    "Latch",
    "MemRead",
    "MemWrite",
    "Mux",
    "NotGate",
    "OrGate",
    "UFBlock",
    "UPBlock",
    "FORMULA",
    "MEMORY",
    "TERM",
    "Signal",
    "SimulationError",
    "Simulator",
    "SimulatorStats",
]
