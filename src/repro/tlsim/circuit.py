"""Circuit netlists for the term-level simulator.

A circuit is a set of components wired by signals.  Primary inputs are
signals driven by no component; latch outputs are state.  Construction
validates single-driver discipline and the absence of combinational
cycles, and precomputes the topological evaluation order used by the
event-driven simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .components import Component, Latch
from .signals import Signal

__all__ = ["Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Malformed netlist: multiple drivers, dangling wires, or cycles."""


class Circuit:
    """A validated netlist with a topological order of combinational logic."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.components: List[Component] = []
        self.latches: List[Latch] = []
        self._driver: Dict[Signal, Component] = {}
        self._signals: Set[Signal] = set()
        self._frozen = False
        self._topo_order: Optional[List[Component]] = None
        self._readers: Optional[Dict[Signal, List[Component]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, component: Component) -> Component:
        """Attach a component; returns it for chaining."""
        if self._frozen:
            raise CircuitError("circuit is frozen; no further additions")
        for out in component.outputs:
            if out in self._driver:
                raise CircuitError(
                    f"signal {out.name!r} driven by both "
                    f"{self._driver[out].name!r} and {component.name!r}"
                )
            self._driver[out] = component
        self.components.append(component)
        if isinstance(component, Latch):
            self.latches.append(component)
        self._signals.update(component.inputs)
        self._signals.update(component.outputs)
        return component

    def freeze(self) -> None:
        """Validate the netlist and compute the evaluation order."""
        if self._frozen:
            return
        self._topo_order = self._topological_order()
        readers: Dict[Signal, List[Component]] = {}
        for component in self.components:
            for signal in component.inputs:
                readers.setdefault(signal, []).append(component)
        self._readers = readers
        self._frozen = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def signals(self) -> Set[Signal]:
        return set(self._signals)

    @property
    def primary_inputs(self) -> List[Signal]:
        """Signals no component drives (latch outputs are *not* inputs)."""
        driven = set(self._driver)
        inputs = [s for s in self._signals if s not in driven]
        return sorted(inputs, key=lambda s: s.name)

    @property
    def state_signals(self) -> List[Signal]:
        return [latch.out for latch in self.latches]

    def driver_of(self, signal: Signal) -> Optional[Component]:
        return self._driver.get(signal)

    def readers_of(self, signal: Signal) -> List[Component]:
        if self._frozen and self._readers is not None:
            return self._readers.get(signal, [])
        return [c for c in self.components if signal in c.inputs]

    def combinational_order(self) -> List[Component]:
        """Topologically sorted combinational components."""
        self.freeze()
        assert self._topo_order is not None
        return list(self._topo_order)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _topological_order(self) -> List[Component]:
        combinational = [c for c in self.components if not isinstance(c, Latch)]
        # Edges: producer -> consumer through a shared signal.  Latch
        # outputs and primary inputs are sources, so they impose no edges.
        producer: Dict[Signal, Component] = {}
        for component in combinational:
            for out in component.outputs:
                producer[out] = component
        indegree: Dict[Component, int] = {c: 0 for c in combinational}
        consumers: Dict[Component, List[Component]] = {c: [] for c in combinational}
        for component in combinational:
            for signal in component.inputs:
                source = producer.get(signal)
                if source is not None:
                    consumers[source].append(component)
                    indegree[component] += 1
        ready = [c for c in combinational if indegree[c] == 0]
        order: List[Component] = []
        while ready:
            component = ready.pop()
            order.append(component)
            for consumer in consumers[component]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(combinational):
            cyclic = [c.name for c in combinational if indegree[c] > 0]
            raise CircuitError(f"combinational cycle through {cyclic}")
        return order
