"""Signals for the term-level symbolic simulator.

A signal is a named wire that carries an EUFM expression — a term for
word-level buses and memory states, a formula for control bits.  Signals
are pure metadata: the simulator owns the mapping from signal to its
current symbolic value.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Signal", "TERM", "FORMULA", "MEMORY"]

#: signal sorts
TERM = "term"
FORMULA = "formula"
MEMORY = "memory"

_SORTS = (TERM, FORMULA, MEMORY)


@dataclass(frozen=True, eq=False)
class Signal:
    """A named wire with a sort (term, formula, or memory).

    Signals hash by a cached value and compare by ``(name, sort)`` — they
    are dictionary keys in the simulator's hottest loops.
    """

    name: str
    sort: str = TERM

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("signal needs a non-empty name")
        if self.sort not in _SORTS:
            raise ValueError(f"unknown signal sort {self.sort!r}")
        object.__setattr__(self, "_hash", hash((self.name, self.sort)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Signal)
            and self.name == other.name
            and self.sort == other.sort
        )

    def is_control(self) -> bool:
        return self.sort == FORMULA

    def is_memory(self) -> bool:
        return self.sort == MEMORY
