"""RS004 — worker payloads must be statically picklable.

The parallel campaign (PR 4) fans jobs out over ``multiprocessing``;
everything handed to the pool crosses a process boundary through
pickle.  Pickle cannot serialize lambdas, closures, or classes/functions
defined inside another function — and the failure is a runtime
``PicklingError`` *inside the pool machinery*, long after the code that
introduced it, often only on the parallel path that CI exercises least.

The checker inspects every fan-out call site — ``apply_async``,
``submit``, ``map``/``starmap``/``imap`` variants on a pool/executor
receiver, and ``Process(target=...)`` constructions — and flags payload
expressions that are statically unpicklable:

* a ``lambda`` anywhere in the payload;
* a reference to a function or class *defined inside another function*
  in the same module (pickled by qualified name, which the child
  process cannot resolve);
* a local ``functools.partial`` over such a function.

Module-level functions, classes and plain data are fine.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..analysis.diagnostics import Diagnostic
from .engine import CheckerSpec, SourceModule, receiver_text, register_checker

__all__ = ["check_picklable_payloads"]

#: attribute names that hand their arguments to another process.
_FANOUT_ATTRS = frozenset({
    "apply_async", "apply", "submit", "map", "map_async", "starmap",
    "starmap_async", "imap", "imap_unordered",
})

#: receivers that make the generic names (``map``...) unambiguous.
_FANOUT_RECEIVER_HINTS = ("pool", "executor")

#: the rarer names are fan-outs on any receiver.
_ALWAYS_FANOUT = frozenset({
    "apply_async", "map_async", "starmap", "starmap_async", "imap",
    "imap_unordered", "submit",
})


def _local_defs(module: SourceModule) -> Set[str]:
    """Names of functions/classes defined inside another function."""
    local: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        parent = module.parents.get(node)
        while parent is not None:
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local.add(node.name)
                break
            parent = module.parents.get(parent)
    return local


def _is_fanout(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "Process":
            return True
        if func.attr not in _FANOUT_ATTRS:
            return False
        if func.attr in _ALWAYS_FANOUT:
            return True
        receiver = receiver_text(func.value).lower()
        return any(hint in receiver for hint in _FANOUT_RECEIVER_HINTS)
    if isinstance(func, ast.Name):
        return func.id == "Process"
    return False


def _payload_exprs(node: ast.Call) -> Iterable[ast.AST]:
    for arg in node.args:
        yield arg
    for keyword in node.keywords:
        if keyword.value is not None:
            yield keyword.value


def check_picklable_payloads(module: SourceModule) -> List[Diagnostic]:
    local_defs = _local_defs(module)
    findings: List[Diagnostic] = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and _is_fanout(node)):
            continue
        for payload in _payload_exprs(node):
            for sub in ast.walk(payload):
                if isinstance(sub, ast.Lambda):
                    findings.append(module.finding(
                        "RS004", "lambda-payload", sub,
                        "lambda in a multiprocessing payload cannot be "
                        "pickled; lift it to a module-level function",
                    ))
                elif isinstance(sub, ast.Name) and sub.id in local_defs:
                    findings.append(module.finding(
                        "RS004", "local-def-payload", sub,
                        f"{sub.id!r} is defined inside a function; pickle "
                        "resolves it by qualified name, which the worker "
                        "process cannot import — move it to module level",
                        name=sub.id,
                    ))
    return findings


register_checker(CheckerSpec(
    code="RS004",
    name="worker-payload-picklability",
    description=(
        "objects handed to the multiprocessing fan-out are statically "
        "picklable: no lambdas, closures, or locally-defined classes"
    ),
    scope=frozenset({"campaign"}),
    run_file=check_picklable_payloads,
))
