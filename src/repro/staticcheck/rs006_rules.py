"""RS006 — confluence and termination audit of the rewrite-rule registry.

PR 2's rule-safety analyzer proves each registered rule *individually*
sound (LHS = RHS under exhaustively enumerated small interpretations).
That is not enough once the rule set grows: two individually sound
rules can still interact badly.  This checker extends the lint with the
two classic rewriting-system obligations the paper's method leans on:

**Critical pairs.**  For every ordered pair of registered rules (A, B)
and every non-variable position ``p`` in A's LHS, the checker unifies
``A.lhs|p`` with ``B.lhs`` (syntactic first-order unification over the
hash-consed DAG; the declared pattern variables of both rules are the
unification variables).  Each unifier yields a critical pair — the two
ways of reducing the overlapped term::

    σ(A.rhs)   vs.   σ(A.lhs)[ p ← σ(B.rhs) ]

and the pair is *joinable* when both reducts agree:

* syntactically — hash-consing makes both sides the same DAG node
  after builder normalization (counted, reported as info); or
* semantically — equal under every enumerated small-universe
  interpretation (the same finite-model method rule safety uses).
  Semantic-only joins are reported as a warning: the rewrite result
  depends on application order even though soundness is preserved.

A pair whose reducts *differ* under some interpretation is an
error-level finding with the witness interpretation attached — one of
the two rules rewrites the overlap unsoundly, exactly the failure mode
the paper's syntactic restrictions exist to prevent.

**Termination.**  Each rule must decrease the lexicographic measure
``(read-over-write redexes, DAG size)`` or be a *permutation* (equal
node-kind multiset, e.g. rule 1's update reordering, whose termination
comes from the external in-order-retirement order).  Anything else is
reported as a warning: node-count measures cannot certify that the
rule set terminates.
"""

from __future__ import annotations

from collections import Counter
from itertools import islice, product
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.diagnostics import ERROR, INFO, WARNING, Diagnostic
from ..eufm import builder
from ..eufm.ast import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Expr,
    FormulaITE,
    Not,
    Or,
    Read,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
)
from ..eufm.evaluator import Interpretation, SortError, evaluate, infer_memory_sorts
from ..eufm.traversal import bool_variables, iter_dag, term_variables
from .engine import STAGE, CheckerSpec, register_checker

__all__ = [
    "analyze_registry",
    "critical_pairs",
    "rule_measure",
    "unify",
]


# ---------------------------------------------------------------------------
# Syntactic unification over the hash-consed DAG
# ---------------------------------------------------------------------------


def _is_pattern_var(node: Expr, pattern_names: frozenset) -> bool:
    return isinstance(node, (TermVar, BoolVar)) and node.name in pattern_names


def _resolve(node: Expr, subst: Dict[Expr, Expr], pattern_names: frozenset) -> Expr:
    while _is_pattern_var(node, pattern_names) and node in subst:
        node = subst[node]
    return node


def _occurs(var: Expr, node: Expr, subst: Dict[Expr, Expr],
            pattern_names: frozenset) -> bool:
    stack = [node]
    seen = set()
    while stack:
        current = _resolve(stack.pop(), subst, pattern_names)
        if current is var:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(current.children)
    return False


def _heads_match(a: Expr, b: Expr) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, (UFApp, UPApp)):
        return a.symbol == b.symbol and len(a.args) == len(b.args)
    if isinstance(a, (And, Or)):
        return len(a.args) == len(b.args)
    if isinstance(a, BoolConst):
        return a is b
    return True


def unify(
    a: Expr,
    b: Expr,
    pattern_names: frozenset,
    subst: Optional[Dict[Expr, Expr]] = None,
) -> Optional[Dict[Expr, Expr]]:
    """Most general unifier of two schematic expressions, or ``None``.

    ``pattern_names`` are the variable names treated as unification
    variables (the union of both rules' declared pattern variables —
    disjoint by the per-rule name prefixes).  N-ary connectives unify
    positionally in their canonical argument order: a sound
    under-approximation (AC-unification would find more overlaps).
    """
    if subst is None:
        subst = {}
    stack: List[Tuple[Expr, Expr]] = [(a, b)]
    while stack:
        left, right = stack.pop()
        left = _resolve(left, subst, pattern_names)
        right = _resolve(right, subst, pattern_names)
        if left is right:
            continue
        if _is_pattern_var(left, pattern_names):
            if left.is_term() != right.is_term():
                return None
            if _occurs(left, right, subst, pattern_names):
                return None
            subst[left] = right
            continue
        if _is_pattern_var(right, pattern_names):
            if left.is_term() != right.is_term():
                return None
            if _occurs(right, left, subst, pattern_names):
                return None
            subst[right] = left
            continue
        if not _heads_match(left, right):
            return None
        pairs = list(zip(left.children, right.children))
        if len(left.children) != len(right.children):
            return None
        stack.extend(pairs)
    return subst


def _apply(node: Expr, subst: Dict[Expr, Expr], pattern_names: frozenset,
           memo: Optional[Dict[Expr, Expr]] = None) -> Expr:
    """Rebuild ``node`` under ``subst`` through the normalizing builder."""
    if memo is None:
        memo = {}
    resolved = _resolve(node, subst, pattern_names)
    if resolved is not node:
        return _apply(resolved, subst, pattern_names, memo)
    cached = memo.get(node)
    if cached is not None:
        return cached
    kids = [_apply(child, subst, pattern_names, memo)
            for child in node.children]
    if isinstance(node, (TermVar, BoolVar, BoolConst)):
        rebuilt: Expr = node
    elif isinstance(node, UFApp):
        rebuilt = builder.uf(node.symbol, kids)
    elif isinstance(node, UPApp):
        rebuilt = builder.up(node.symbol, kids)
    elif isinstance(node, TermITE):
        rebuilt = builder.ite_term(*kids)
    elif isinstance(node, FormulaITE):
        rebuilt = builder.ite_formula(*kids)
    elif isinstance(node, Read):
        rebuilt = builder.read(*kids)
    elif isinstance(node, Write):
        rebuilt = builder.write(*kids)
    elif isinstance(node, Eq):
        rebuilt = builder.eq(*kids)
    elif isinstance(node, Not):
        rebuilt = builder.not_(*kids)
    elif isinstance(node, And):
        rebuilt = builder.and_(*kids)
    elif isinstance(node, Or):
        rebuilt = builder.or_(*kids)
    else:  # pragma: no cover - new node kinds must be added here
        raise TypeError(f"cannot rebuild node kind {node.kind!r}")
    memo[node] = rebuilt
    return rebuilt


def _replace_walk(root: Expr, target: Expr, replacement: Expr) -> Expr:
    """Rebuild ``root`` with every occurrence of the sub-DAG ``target``
    replaced by ``replacement`` (hash-consing shares occurrences, so
    positionally distinct but structurally equal subterms rewrite
    together — an over-approximation noted in the module docstring)."""
    memo: Dict[Expr, Expr] = {target: replacement}

    def rebuild(node: Expr) -> Expr:
        cached = memo.get(node)
        if cached is not None:
            return cached
        kids = [rebuild(child) for child in node.children]
        if all(new is old for new, old in zip(kids, node.children)):
            rebuilt = node
        elif isinstance(node, UFApp):
            rebuilt = builder.uf(node.symbol, kids)
        elif isinstance(node, UPApp):
            rebuilt = builder.up(node.symbol, kids)
        elif isinstance(node, TermITE):
            rebuilt = builder.ite_term(*kids)
        elif isinstance(node, FormulaITE):
            rebuilt = builder.ite_formula(*kids)
        elif isinstance(node, Read):
            rebuilt = builder.read(*kids)
        elif isinstance(node, Write):
            rebuilt = builder.write(*kids)
        elif isinstance(node, Eq):
            rebuilt = builder.eq(*kids)
        elif isinstance(node, Not):
            rebuilt = builder.not_(*kids)
        elif isinstance(node, And):
            rebuilt = builder.and_(*kids)
        elif isinstance(node, Or):
            rebuilt = builder.or_(*kids)
        else:  # pragma: no cover
            raise TypeError(f"cannot rebuild node kind {node.kind!r}")
        memo[node] = rebuilt
        return rebuilt

    return rebuild(root)


# ---------------------------------------------------------------------------
# Semantic joinability (finite-model, mirrors rule_safety)
# ---------------------------------------------------------------------------


def _semantically_equal(
    left: Expr,
    right: Expr,
    domain_sizes: Sequence[int] = (2, 3),
    seeds: Sequence[int] = (0, 1),
    max_assignments: int = 4096,
) -> Tuple[bool, Optional[Dict[str, object]]]:
    """(equal-under-all-enumerated-interpretations, witness-or-None)."""
    if left.is_term() != right.is_term():
        return False, {"reason": "sort mismatch"}
    equivalence = (builder.eq(left, right) if left.is_term()
                   else builder.iff(left, right))
    try:
        memory_sorted = infer_memory_sorts(equivalence)
    except SortError as exc:
        return False, {"reason": f"ill-sorted: {exc}"}
    value_vars = sorted(
        {v for v in term_variables(equivalence) if v not in memory_sorted},
        key=lambda v: v.name,
    )
    bool_vars = sorted(bool_variables(equivalence), key=lambda v: v.name)
    for domain in domain_sizes:
        assignments = product(
            product(range(domain), repeat=len(value_vars)),
            product((False, True), repeat=len(bool_vars)),
        )
        for term_values, bool_values in islice(assignments, max_assignments):
            term_assignment = {
                var.name: value
                for var, value in zip(value_vars, term_values)
            }
            bool_assignment = {
                var.name: value
                for var, value in zip(bool_vars, bool_values)
            }
            for seed in seeds:
                interp = Interpretation(
                    domain_size=domain,
                    seed=seed,
                    term_values=term_assignment,
                    bool_values=bool_assignment,
                )
                try:
                    if not evaluate(equivalence, interp):
                        return False, {
                            "domain_size": domain,
                            "seed": seed,
                            "term_values": dict(term_assignment),
                            "bool_values": dict(bool_assignment),
                        }
                except SortError as exc:
                    return False, {"reason": f"ill-sorted: {exc}"}
    return True, None


# ---------------------------------------------------------------------------
# Critical pairs
# ---------------------------------------------------------------------------


def critical_pairs(rule_a, rule_b, self_pair: bool) -> List[Dict[str, object]]:
    """All overlaps of ``rule_b`` into ``rule_a``'s LHS.

    Returns dicts with the overlapped term and both reducts; joinability
    classification is the caller's job.
    """
    pattern_names = frozenset(rule_a.pattern_vars) | frozenset(rule_b.pattern_vars)
    pairs: List[Dict[str, object]] = []
    for position, sub in enumerate(iter_dag(rule_a.lhs)):
        if _is_pattern_var(sub, pattern_names):
            continue
        if self_pair and sub is rule_a.lhs:
            continue  # root self-overlap is trivially joinable
        if sub.is_term() != rule_b.lhs.is_term():
            continue
        subst = unify(sub, rule_b.lhs, pattern_names)
        if subst is None:
            continue
        overlapped = _apply(rule_a.lhs, subst, pattern_names)
        reduct_outer = _apply(rule_a.rhs, subst, pattern_names)
        inner_redex = _apply(sub, subst, pattern_names)
        inner_rhs = _apply(rule_b.rhs, subst, pattern_names)
        reduct_inner = _replace_walk(overlapped, inner_redex, inner_rhs)
        pairs.append({
            "position": position,
            "overlap": overlapped,
            "reduct_outer": reduct_outer,
            "reduct_inner": reduct_inner,
        })
    return pairs


# ---------------------------------------------------------------------------
# Termination measure
# ---------------------------------------------------------------------------


def rule_measure(expr: Expr) -> Tuple[int, int]:
    """Lexicographic termination measure: (read-over-write redexes,
    distinct DAG nodes)."""
    redexes = 0
    size = 0
    for node in iter_dag(expr):
        size += 1
        if isinstance(node, Read) and isinstance(node.mem, Write):
            redexes += 1
    return redexes, size


def _kind_multiset(expr: Expr) -> Counter:
    return Counter(node.kind for node in iter_dag(expr))


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


def _diag(severity: str, slug: str, subject: str, message: str,
          **data) -> Diagnostic:
    return Diagnostic(
        severity=severity,
        stage=STAGE,
        check=f"RS006.{slug}",
        subject=subject,
        message=message,
        data={"code": "RS006", "file": "repro/analysis/rule_safety.py",
              "line": 0, "col": 0, "qualname": "REGISTRY", **data},
    )


def analyze_registry(specs=None) -> List[Diagnostic]:
    """Confluence + termination findings for the rule registry."""
    if specs is None:
        from ..analysis.rule_safety import REGISTRY
        specs = REGISTRY
    diagnostics: List[Diagnostic] = []
    instances = []
    for spec in specs:
        try:
            instances.append((spec, spec.build()))
        except Exception as exc:
            diagnostics.append(_diag(
                ERROR, "builder-failed", spec.name,
                f"rule instance builder raised "
                f"{type(exc).__name__}: {exc}",
                rule=spec.name,
            ))

    # Termination: each rule decreases the measure or is a permutation.
    for spec, instance in instances:
        if instance.lhs is instance.rhs:
            diagnostics.append(_diag(
                INFO, "identity-rule", spec.name,
                "LHS and RHS normalize to the same DAG; no termination "
                "obligation", rule=spec.name,
            ))
            continue
        lhs_measure = rule_measure(instance.lhs)
        rhs_measure = rule_measure(instance.rhs)
        if rhs_measure < lhs_measure:
            diagnostics.append(_diag(
                INFO, "measure-decreases", spec.name,
                f"measure {lhs_measure} -> {rhs_measure} "
                "(read-over-write redexes, DAG size): terminating",
                rule=spec.name, lhs_measure=list(lhs_measure),
                rhs_measure=list(rhs_measure),
            ))
        elif _kind_multiset(instance.lhs) == _kind_multiset(instance.rhs):
            diagnostics.append(_diag(
                INFO, "permutative-rule", spec.name,
                "LHS and RHS have equal node-kind multisets; the rule "
                "permutes structure and needs an external well-founded "
                "order (in-order retirement) for termination",
                rule=spec.name,
            ))
        else:
            diagnostics.append(_diag(
                WARNING, "measure-not-decreasing", spec.name,
                f"measure {lhs_measure} -> {rhs_measure} does not "
                "decrease and the rule is not a permutation; termination "
                "of the rule set is not certified by the node-count "
                "measure",
                rule=spec.name, lhs_measure=list(lhs_measure),
                rhs_measure=list(rhs_measure),
            ))

    # Confluence: classify every critical pair of every ordered rule pair.
    total = syntactic = semantic = 0
    for spec_a, inst_a in instances:
        for spec_b, inst_b in instances:
            pair_name = f"{spec_a.name} <~ {spec_b.name}"
            semantic_only = 0
            for pair in critical_pairs(inst_a, inst_b,
                                       self_pair=inst_a is inst_b):
                total += 1
                outer = pair["reduct_outer"]
                inner = pair["reduct_inner"]
                if outer is inner:
                    syntactic += 1
                    continue
                equal, witness = _semantically_equal(outer, inner)
                if equal:
                    semantic += 1
                    semantic_only += 1
                else:
                    diagnostics.append(_diag(
                        ERROR, "critical-pair-divergent", pair_name,
                        "the two reducts of an overlap differ under a "
                        "concrete interpretation; rewriting the overlap "
                        "with these rules in different orders changes "
                        "validity",
                        rules=[spec_a.name, spec_b.name],
                        witness=witness,
                    ))
            if semantic_only:
                diagnostics.append(_diag(
                    WARNING, "overlap-order-dependent", pair_name,
                    f"{semantic_only} overlap(s) join semantically but "
                    "not syntactically: the normal form depends on "
                    "application order (sound, but the engine should "
                    "fix an order)",
                    rules=[spec_a.name, spec_b.name],
                    count=semantic_only,
                ))
    diagnostics.append(_diag(
        INFO, "registry-summary", "registry",
        f"{len(instances)} rules; {total} critical pair(s): "
        f"{syntactic} joinable syntactically, {semantic} semantically "
        f"only, {total - syntactic - semantic} divergent",
        rules=[spec.name for spec, _ in instances],
        pairs=total, syntactic=syntactic, semantic=semantic,
    ))
    return diagnostics


def _run_project(_modules) -> List[Diagnostic]:
    return analyze_registry()


register_checker(CheckerSpec(
    code="RS006",
    name="rule-registry-confluence",
    description=(
        "critical-pair overlaps between registered rewriting rules are "
        "joinable and every rule decreases a termination measure"
    ),
    run_project=_run_project,
))
