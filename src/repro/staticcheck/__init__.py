"""Self-hosting static invariant checker for the verification pipeline.

The paper's method survives only under discipline: rewriting rules must
stay inside the positive-equality fragment, and every reduction must
preserve soundness.  The codebase has grown analogous *code-level*
disciplines — a structured exception taxonomy, Deadline poll sites in
every pipeline loop, a single-writer campaign journal, picklable worker
payloads, context-managed ambient state — but until now nothing checked
them mechanically.  :mod:`repro.staticcheck` is that checker: an AST +
dataflow lint engine with a pluggable registry of invariant checkers,
run as ``python -m repro staticcheck`` and self-hosted over
``src/repro`` in CI against a committed baseline.

Shipped checkers:

* **RS001 exception-taxonomy** — no bare ``except:`` and no raising of
  broad builtin exceptions inside the verification-path packages; use
  the :mod:`repro.errors` hierarchy.
* **RS002 deadline-poll coverage** — every ``while`` loop (and
  unbounded ``for``) in a pipeline module must poll the ambient
  :class:`~repro.guard.deadline.Deadline` (``check``/``tick``) on some
  path through its body.
* **RS003 single-writer journal** — journal mutation APIs are only
  called from the runner/parent modules; workers and executors are
  read-only.
* **RS004 worker-payload picklability** — objects handed to the
  multiprocessing fan-out must be statically picklable: no lambdas,
  no closures, no locally-defined classes.
* **RS005 span/ContextVar hygiene** — ambient ContextVars (tracer,
  deadline) are only entered via context managers; a manual ``.set()``
  must keep its token and be paired with ``.reset()``.
* **RS006 rule-registry confluence/termination** — critical-pair
  overlap analysis plus a decreasing-measure check over the rewrite
  rule registry of :mod:`repro.analysis.rule_safety`.

Findings are ordinary :class:`repro.analysis.diagnostics.Diagnostic`
records, so ``repro staticcheck`` and ``repro lint`` share one JSON
report schema and one exit-code contract.
"""

from __future__ import annotations

from .baseline import Baseline, apply_baseline, fingerprint
from .engine import (
    CheckerSpec,
    SourceModule,
    all_checkers,
    checker_codes,
    load_source,
    register_checker,
    run_project,
)

# Importing the checker modules registers them.
from . import (  # noqa: F401  (registration side effect)
    rs001_taxonomy,
    rs002_deadline,
    rs003_journal,
    rs004_pickle,
    rs005_contextvar,
    rs006_rules,
)

__all__ = [
    "Baseline",
    "CheckerSpec",
    "SourceModule",
    "all_checkers",
    "apply_baseline",
    "checker_codes",
    "fingerprint",
    "load_source",
    "register_checker",
    "run_project",
]
