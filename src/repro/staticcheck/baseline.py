"""Committed baseline of reviewed, justified staticcheck exemptions.

Some findings are deliberate: the chaos harness's fault seam *is*
allowed to corrupt the journal, a reference loop may be intentionally
unsupervised.  Those exemptions live in a committed JSON file — not in
scattered ``# noqa`` comments — so each one carries a reviewable
justification and CI can fail on anything new::

    {
      "version": 1,
      "entries": [
        {
          "fingerprint": "RS002.unpolled-loop@repro/sat/cnf.py:dedupe#0",
          "code": "RS002",
          "justification": "bounded by the clause list built one line up"
        }
      ]
    }

Fingerprints are ``check@file:qualname#occurrence`` — stable under line
drift (no line numbers) and under edits elsewhere in the file; the
occurrence index only disambiguates several identical findings inside
one function.  A baseline entry that no longer matches any finding is
*stale* and reported as a warning so the file shrinks as violations get
fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.diagnostics import WARNING, Diagnostic
from ..errors import ReproError
from .engine import STAGE

__all__ = ["Baseline", "apply_baseline", "fingerprint", "fingerprints"]

_FORMAT_VERSION = 1


def fingerprints(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """Stable fingerprint per finding, parallel to ``diagnostics``.

    Occurrence indices count identical ``(check, file, qualname)``
    findings in ``(line, col)`` order, so reordering the input does not
    change anyone's fingerprint.
    """
    ordered = sorted(
        range(len(diagnostics)),
        key=lambda i: (diagnostics[i].data.get("line", 0),
                       diagnostics[i].data.get("col", 0)),
    )
    counts: Dict[Tuple[str, str, str], int] = {}
    result: List[str] = [""] * len(diagnostics)
    for index in ordered:
        diag = diagnostics[index]
        key = (
            diag.check,
            str(diag.data.get("file", "")),
            str(diag.data.get("qualname", "")),
        )
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        result[index] = f"{key[0]}@{key[1]}:{key[2]}#{occurrence}"
    return result


def fingerprint(diagnostic: Diagnostic) -> str:
    """Fingerprint of a single finding (occurrence 0)."""
    return fingerprints([diagnostic])[0]


@dataclass
class Baseline:
    """The parsed baseline file: fingerprint -> justification."""

    entries: Dict[str, str] = field(default_factory=dict)
    path: str = ""

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise ReproError(f"baseline file not found: {path!r}")
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"unreadable baseline {path!r}: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ReproError(
                f"baseline {path!r} is not a {{version, entries}} object"
            )
        entries: Dict[str, str] = {}
        for entry in payload["entries"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise ReproError(
                    f"baseline {path!r}: every entry needs a 'fingerprint'"
                )
            entries[entry["fingerprint"]] = str(
                entry.get("justification", "")
            )
        return cls(entries=entries, path=path)

    def save(self, path: str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {"fingerprint": fp,
                 "code": fp.split(".", 1)[0],
                 "justification": justification}
                for fp, justification in sorted(self.entries.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def from_findings(
        cls,
        diagnostics: Sequence[Diagnostic],
        previous: Optional["Baseline"] = None,
        placeholder: str = "TODO: justify this exemption",
    ) -> "Baseline":
        """Baseline covering ``diagnostics``, keeping justifications the
        previous baseline already recorded (``--update-baseline``)."""
        keep = previous.entries if previous is not None else {}
        entries = {
            fp: keep.get(fp) or placeholder
            for fp in fingerprints(list(diagnostics))
        }
        return cls(entries=entries)


def apply_baseline(
    diagnostics: Sequence[Diagnostic],
    baseline: Baseline,
) -> Tuple[List[Diagnostic], List[Diagnostic], List[Diagnostic]]:
    """Split findings against the baseline.

    Returns ``(kept, suppressed, extra)`` where *kept* are findings the
    baseline does not cover, *suppressed* are baselined findings, and
    *extra* are warning diagnostics about stale baseline entries
    (exemptions that no longer match anything — delete them).
    """
    diagnostics = list(diagnostics)
    prints = fingerprints(diagnostics)
    kept: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    used = set()
    for diag, fp in zip(diagnostics, prints):
        if fp in baseline.entries:
            used.add(fp)
            suppressed.append(diag)
        else:
            kept.append(diag)
    extra = [
        Diagnostic(
            severity=WARNING,
            stage=STAGE,
            check="RS000.stale-baseline-entry",
            subject=fp,
            message=(
                "baseline entry matches no current finding; the "
                "violation was fixed — delete the entry"
            ),
            data={"code": "RS000", "file": baseline.path, "line": 0,
                  "col": 0, "qualname": "<baseline>", "fingerprint": fp},
        )
        for fp in sorted(set(baseline.entries) - used)
    ]
    return kept, suppressed, extra
