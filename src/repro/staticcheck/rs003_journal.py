"""RS003 — single-writer campaign journal.

The crash-resume story of :mod:`repro.campaign` rests on one invariant
(PRs 1/4): the journal has exactly one writer — the parent process.
Workers and the shared per-job executor *emit* would-be records over a
queue; only the runner/parent appends.  If any other module gains a
direct mutation path, concurrent appends can interleave torn lines and
resume silently replays a corrupted history.

The checker flags, anywhere outside the allow-listed writer modules:

* calls to a mutation method (``append``, ``corrupt_tail``, ``close``)
  on a receiver whose dotted path mentions ``journal``;
* instantiation of the ``Journal`` class itself (opening the file in
  append mode *is* acquiring writership).

Allow-listed writers: ``campaign/journal.py`` (the implementation),
``campaign/runner.py`` and ``campaign/parallel.py`` (the single-writer
parents), ``campaign/faults.py`` (the ``journal-corrupt`` fault seam,
which fires only in the parent where ``fault_journal`` is non-None).
Within ``parallel.py`` the worker entry points (functions whose name
starts with ``_worker``) remain forbidden: they run in child processes.
"""

from __future__ import annotations

import ast
from typing import List

from ..analysis.diagnostics import Diagnostic
from .engine import CheckerSpec, SourceModule, receiver_text, register_checker

__all__ = ["check_single_writer"]

_MUTATION_ATTRS = frozenset({"append", "corrupt_tail", "close"})

#: repo-relative suffixes of the modules allowed to mutate the journal.
WRITER_MODULES = (
    "repro/campaign/journal.py",
    "repro/campaign/runner.py",
    "repro/campaign/parallel.py",
    "repro/campaign/faults.py",
)


def _in_worker_scope(module: SourceModule, node: ast.AST) -> bool:
    qualname = module.qualname(node)
    return any(part.startswith("_worker") or part.startswith("worker_")
               for part in qualname.split("."))


def check_single_writer(module: SourceModule) -> List[Diagnostic]:
    module_allowed = module.relpath.endswith(WRITER_MODULES)
    findings: List[Diagnostic] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATION_ATTRS:
            receiver = receiver_text(func.value)
            if "journal" not in receiver.lower():
                continue
            allowed = module_allowed and not _in_worker_scope(module, node)
            if allowed:
                continue
            where = ("a worker scope of a writer module"
                     if module_allowed else "a non-writer module")
            findings.append(module.finding(
                "RS003", "journal-mutation", node,
                f"journal mutation {receiver}.{func.attr}() from {where}; "
                "only the runner/parent may write — emit the record over "
                "the result queue instead",
                receiver=receiver,
                method=func.attr,
            ))
        elif isinstance(func, ast.Name) and func.id == "Journal":
            if module_allowed and not _in_worker_scope(module, node):
                continue
            findings.append(module.finding(
                "RS003", "journal-open", node,
                "constructing Journal(...) acquires writership of the "
                "journal file; only the runner/parent modules may open it "
                "— read with JournalReplay / load helpers instead",
            ))
    return findings


register_checker(CheckerSpec(
    code="RS003",
    name="single-writer-journal",
    description=(
        "journal mutation APIs are called only from the runner/parent "
        "modules; workers and executors are read-only"
    ),
    scope=None,
    run_file=check_single_writer,
))
