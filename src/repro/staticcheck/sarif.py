"""SARIF 2.1.0 export of staticcheck findings.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; CI uploads the report as an artifact so findings annotate
pull requests.  The mapping is direct: one ``run`` for the tool, one
``reportingDescriptor`` per registered checker, one ``result`` per
:class:`~repro.analysis.diagnostics.Diagnostic` with a physical
location taken from the finding's ``file``/``line``/``col`` payload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..analysis.diagnostics import ERROR, WARNING, Diagnostic
from .engine import all_checkers

__all__ = ["to_sarif"]

_SARIF_LEVELS = {ERROR: "error", WARNING: "warning"}


def _rules() -> List[Dict[str, Any]]:
    return [
        {
            "id": spec.code,
            "name": spec.name,
            "shortDescription": {"text": spec.description},
        }
        for spec in all_checkers()
    ]


def to_sarif(
    diagnostics: Sequence[Diagnostic],
    tool_version: str = "1.0.0",
) -> Dict[str, Any]:
    """The findings as a SARIF 2.1.0 log object (JSON-serializable)."""
    results: List[Dict[str, Any]] = []
    for diag in diagnostics:
        line = int(diag.data.get("line", 0) or 0)
        result: Dict[str, Any] = {
            "ruleId": str(diag.data.get("code", diag.check.split(".")[0])),
            "level": _SARIF_LEVELS.get(diag.severity, "note"),
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": str(diag.data.get("file", "")),
                    },
                    "region": {
                        "startLine": max(1, line),
                        "startColumn": int(diag.data.get("col", 0) or 0) + 1,
                    },
                },
            }],
            "properties": {
                "check": diag.check,
                "qualname": diag.data.get("qualname", ""),
            },
        }
        results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-staticcheck",
                    "informationUri": "https://example.invalid/repro",
                    "version": tool_version,
                    "rules": _rules(),
                },
            },
            "results": results,
        }],
    }
