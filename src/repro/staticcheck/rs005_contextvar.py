"""RS005 — ambient ContextVar and span hygiene.

Both ambient facilities — the observability tracer
(:mod:`repro.obs.tracer`) and the supervision deadline
(:mod:`repro.guard.deadline`) — install themselves via a ContextVar and
restore the previous value on exit.  The restore is what makes nesting
(campaign → worker → per-attempt ``verify()``) and the allocation-free
Null ambient defaults work; a ``.set()`` whose token is dropped leaks
the installed object into every later run in the same context — e.g. a
worker's per-job tracer surviving into the next job and mis-attributing
its metrics.

Checks (all files):

* ``discarded-token`` — a ``<ContextVar>.set(...)`` whose result is
  thrown away (expression statement): the previous value can never be
  restored;
* ``set-without-reset`` — a captured token with no matching
  ``.reset(...)`` on the same variable in the same function *or* the
  same class (the ``__enter__``/``__exit__`` context-manager split is
  the sanctioned pattern);
* ``manual-enter`` — calling ``__enter__``/``__exit__`` explicitly on
  anything: spans, deadlines and tracers are entered with ``with``.

ContextVars are recognized by module-level ``X = ContextVar(...)``
assignments in the scanned file.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from ..analysis.diagnostics import Diagnostic
from .engine import CheckerSpec, SourceModule, receiver_text, register_checker

__all__ = ["check_contextvar_hygiene"]


def _contextvar_names(module: SourceModule) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        called = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if called != "ContextVar":
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _enclosing(module: SourceModule, node: ast.AST) -> Tuple[
        Optional[ast.AST], Optional[ast.AST]]:
    """(enclosing function node, enclosing class node) of ``node``."""
    function = None
    klass = None
    current = module.parents.get(node)
    while current is not None:
        if function is None and isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function = current
        if klass is None and isinstance(current, ast.ClassDef):
            klass = current
        current = module.parents.get(current)
    return function, klass


def check_contextvar_hygiene(module: SourceModule) -> List[Diagnostic]:
    cv_names = _contextvar_names(module)
    findings: List[Diagnostic] = []

    # All .reset(...) sites on known ContextVars, keyed by receiver name,
    # with their enclosing scopes.
    resets: List[Tuple[str, Optional[ast.AST], Optional[ast.AST]]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = receiver_text(node.func.value)
            if node.func.attr == "reset" and receiver in cv_names:
                fn, kl = _enclosing(module, node)
                resets.append((receiver, fn, kl))

    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr in ("__enter__", "__exit__"):
            findings.append(module.finding(
                "RS005", "manual-enter", node,
                f"explicit .{attr}() call; enter spans/deadlines/tracers "
                "with a 'with' statement so the exit path is guaranteed",
            ))
            continue
        if attr != "set":
            continue
        receiver = receiver_text(node.func.value)
        if receiver not in cv_names:
            continue
        parent = module.parents.get(node)
        if isinstance(parent, ast.Expr):
            findings.append(module.finding(
                "RS005", "discarded-token", node,
                f"{receiver}.set(...) discards its token; the previous "
                "ambient value can never be restored — keep the token and "
                "reset() it, or use the context-manager wrapper",
                contextvar=receiver,
            ))
            continue
        fn, kl = _enclosing(module, node)
        paired = any(
            name == receiver and (
                (fn is not None and reset_fn is fn)
                or (kl is not None and reset_kl is kl)
            )
            for name, reset_fn, reset_kl in resets
        )
        if not paired:
            findings.append(module.finding(
                "RS005", "set-without-reset", node,
                f"{receiver}.set(...) has no matching {receiver}.reset() "
                "in the same function or class; ambient state leaks past "
                "this scope",
                contextvar=receiver,
            ))
    return findings


register_checker(CheckerSpec(
    code="RS005",
    name="contextvar-hygiene",
    description=(
        "ambient ContextVars (tracer, deadline) are entered via context "
        "managers; manual set() keeps its token and is paired with reset()"
    ),
    scope=None,
    run_file=check_contextvar_hygiene,
))
