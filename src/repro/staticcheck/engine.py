"""The staticcheck engine: source loading, checker registry, dispatch.

The engine is deliberately small.  A *checker* is a named, registered
analysis with one of two shapes:

* a **file checker** receives one parsed :class:`SourceModule` and
  returns :class:`~repro.analysis.diagnostics.Diagnostic` records for
  violations in that file (RS001–RS005);
* a **project checker** runs once per invocation against the repository
  state as a whole — RS006 analyzes the imported rewrite-rule registry,
  not source text.

File checkers declare a *scope*: the ``repro`` sub-packages whose
invariants they guard (``encode``, ``sat``, ...).  A file that does not
live under a recognizable ``repro`` package — e.g. a test fixture in a
temporary directory — matches every scope, which is what makes the
checkers unit-testable on snippets.

Suppression is two-tier, mirroring the split between *local* and
*deliberate* exemptions:

* a ``# noqa: RS002`` comment on the flagged line silences one site
  (use sparingly — prefer fixing);
* a committed baseline file (:mod:`repro.staticcheck.baseline`) records
  reviewed, justified exemptions and is enforced in CI.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.diagnostics import ERROR, Diagnostic
from ..errors import ReproError

__all__ = [
    "STAGE",
    "CheckerSpec",
    "SourceModule",
    "all_checkers",
    "checker_codes",
    "collect_files",
    "load_source",
    "register_checker",
    "resolve_codes",
    "run_project",
]

#: the ``Diagnostic.stage`` every staticcheck finding carries.
STAGE = "staticcheck"

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9_,\s]+))?", re.IGNORECASE)

#: container statements whose bodies are transparent to path analysis.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass
class SourceModule:
    """One parsed source file plus the derived maps the checkers share."""

    path: str
    relpath: str
    text: str
    tree: ast.Module
    #: dotted package parts, e.g. ``("repro", "encode")``; empty when the
    #: file does not live under a recognizable ``repro`` package root.
    package: Tuple[str, ...] = ()
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: line number -> set of suppressed codes ("*" means all).
    noqa: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def subpackage(self) -> str:
        """The ``repro`` sub-package name (``"encode"``...), or ``""``."""
        return self.package[1] if len(self.package) >= 2 else ""

    def qualname(self, node: ast.AST) -> str:
        """Dotted function/class path enclosing ``node`` (``"<module>"``
        at top level) — the line-drift-stable part of a fingerprint."""
        names: List[str] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names)) or "<module>"

    def finding(
        self,
        code: str,
        slug: str,
        node: ast.AST,
        message: str,
        severity: str = ERROR,
        **data,
    ) -> Diagnostic:
        """Build one staticcheck Diagnostic anchored at ``node``."""
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Diagnostic(
            severity=severity,
            stage=STAGE,
            check=f"{code}.{slug}",
            subject=f"{self.relpath}:{line}",
            message=message,
            data={
                "code": code,
                "file": self.relpath,
                "line": line,
                "col": col,
                "qualname": self.qualname(node),
                **data,
            },
        )

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        codes = self.noqa.get(diagnostic.data.get("line", 0))
        if not codes:
            return False
        return "*" in codes or diagnostic.data.get("code") in codes


@dataclass(frozen=True)
class CheckerSpec:
    """One registered invariant checker."""

    code: str
    name: str
    description: str
    #: sub-packages of ``repro`` the file checker applies to; ``None``
    #: means every scanned file.  Ignored for project checkers.
    scope: Optional[frozenset] = None
    run_file: Optional[Callable[[SourceModule], List[Diagnostic]]] = None
    run_project: Optional[Callable[[Sequence[SourceModule]], List[Diagnostic]]] = None

    def applies_to(self, module: SourceModule) -> bool:
        if self.run_file is None:
            return False
        if self.scope is None:
            return True
        # Fixture mode: files outside a repro package match every scope.
        if not module.package:
            return True
        return module.subpackage in self.scope


_REGISTRY: Dict[str, CheckerSpec] = {}


def register_checker(spec: CheckerSpec) -> CheckerSpec:
    """Add ``spec`` to the registry (import-time side effect of the
    ``rs00x_*`` modules); re-registering a code replaces the entry."""
    _REGISTRY[spec.code] = spec
    return spec


def all_checkers() -> List[CheckerSpec]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def checker_codes() -> List[str]:
    return sorted(_REGISTRY)


def resolve_codes(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Set[str]:
    """The enabled checker codes after ``--select``/``--ignore``."""
    known = set(_REGISTRY)
    chosen = set(known)
    if select:
        requested = {code.strip().upper() for code in select if code.strip()}
        unknown = requested - known
        if unknown:
            raise ReproError(
                f"unknown checker code(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        chosen = requested
    if ignore:
        dropped = {code.strip().upper() for code in ignore if code.strip()}
        unknown = dropped - known
        if unknown:
            raise ReproError(
                f"unknown checker code(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        chosen -= dropped
    return chosen


# ---------------------------------------------------------------------------
# Source loading
# ---------------------------------------------------------------------------


def _derive_package(path: str) -> Tuple[Tuple[str, ...], str]:
    """Package parts + repo-relative path for a file under ``repro``."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            package = tuple(parts[index:-1])
            relpath = "/".join(parts[index:])
            return package, relpath
    return (), os.path.basename(path)


def _collect_noqa(text: str) -> Dict[int, Set[str]]:
    noqa: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            noqa[lineno] = {"*"}
        else:
            noqa[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return noqa


def load_source(path: str) -> Tuple[Optional[SourceModule], Optional[Diagnostic]]:
    """Parse one file; returns ``(module, None)`` or ``(None, finding)``.

    Unreadable or unparseable files are findings, not crashes: the
    engine must survive anything a repository can contain.
    """
    package, relpath = _derive_package(path)
    try:
        with tokenize.open(path) as handle:
            text = handle.read()
    except (OSError, SyntaxError, UnicodeDecodeError, ValueError) as exc:
        return None, Diagnostic(
            severity=ERROR,
            stage=STAGE,
            check="RS000.unreadable",
            subject=f"{relpath}:0",
            message=f"could not read source: {type(exc).__name__}: {exc}",
            data={"code": "RS000", "file": relpath, "line": 0, "col": 0,
                  "qualname": "<module>"},
        )
    try:
        tree = ast.parse(text, filename=path)
    except (SyntaxError, ValueError, MemoryError, RecursionError) as exc:
        return None, Diagnostic(
            severity=ERROR,
            stage=STAGE,
            check="RS000.parse-error",
            subject=f"{relpath}:{getattr(exc, 'lineno', 0) or 0}",
            message=f"could not parse source: {type(exc).__name__}: {exc}",
            data={"code": "RS000", "file": relpath,
                  "line": getattr(exc, "lineno", 0) or 0, "col": 0,
                  "qualname": "<module>"},
        )
    module = SourceModule(
        path=os.path.abspath(path),
        relpath=relpath,
        text=text,
        tree=tree,
        package=package,
        noqa=_collect_noqa(text),
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            module.parents[child] = parent
    return module, None


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise ReproError(f"no such file or directory: {path!r}")
    return found


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def run_project(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project_checks: bool = True,
) -> List[Diagnostic]:
    """Run every enabled checker over ``paths``; the engine entry point.

    Findings suppressed by ``# noqa`` comments are dropped here; baseline
    suppression is the caller's concern (the CLI applies it so it can
    also report stale baseline entries).
    """
    enabled = resolve_codes(select, ignore)
    diagnostics: List[Diagnostic] = []
    modules: List[SourceModule] = []
    for path in collect_files(paths):
        module, failure = load_source(path)
        if failure is not None:
            diagnostics.append(failure)
            continue
        modules.append(module)
        for spec in all_checkers():
            if spec.code not in enabled or not spec.applies_to(module):
                continue
            findings = spec.run_file(module)  # type: ignore[misc]
            diagnostics.extend(
                f for f in findings if not module.suppressed(f)
            )
    if project_checks:
        for spec in all_checkers():
            if spec.code in enabled and spec.run_project is not None:
                diagnostics.extend(spec.run_project(modules))
    return diagnostics


# ---------------------------------------------------------------------------
# Shared AST helpers used by several checkers
# ---------------------------------------------------------------------------


def iter_body_nodes(nodes: Iterable[ast.AST]):
    """Walk statements/expressions without descending into nested
    function/class/lambda scopes (their bodies run on *other* paths)."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def receiver_text(node: ast.AST) -> str:
    """Best-effort dotted rendering of a call receiver (``self._journal``)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call):
        func = current.func
        if isinstance(func, ast.Name):
            parts.append(func.id + "()")
        elif isinstance(func, ast.Attribute):
            parts.append(func.attr + "()")
    return ".".join(reversed(parts))
