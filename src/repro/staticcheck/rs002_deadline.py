"""RS002 — Deadline-poll coverage of pipeline loops.

PR 6's supervision contract: *every* layer of the pipeline honors the
ambient :class:`~repro.guard.deadline.Deadline`, so a wall/CPU/memory
budget (or a worker heartbeat) can interrupt any stage.  The contract
is only as good as its poll sites — a single unbounded loop with no
``check``/``tick`` call is a place where a supervised run can wedge
forever (the chaos-smoke hang scenario, minus the rescue).

For every ``while`` loop, and every ``for`` loop over an unbounded
iterator (``itertools.count(...)`` or the two-argument ``iter(...)``
sentinel form), in a pipeline package, the checker requires a poll on
some path through the loop body:

* a direct call whose attribute is ``check`` or ``tick`` (the Deadline
  and MemoryBudget poll vocabulary), e.g. ``deadline.tick("sat")`` or
  ``current_deadline().check("rewrite")``; or
* a call to a function *in the same module* that itself polls
  (computed to fixpoint over the module-local call graph — the
  dataflow half of the checker, covering helpers like a traversal
  kernel that polls on behalf of its callers).

Bounded ``for`` loops (ranges, container walks) are exempt: they are
dominated by the allocation that produced their iterable, which the
memory budget already charges.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from ..analysis.diagnostics import Diagnostic
from .engine import CheckerSpec, SourceModule, iter_body_nodes, register_checker

__all__ = ["check_deadline_polls"]

_POLL_ATTRS = frozenset({"check", "tick"})


def _is_poll(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _POLL_ATTRS
    )


def _called_names(nodes) -> Set[str]:
    """Bare and method names called anywhere in ``nodes`` (scope-local)."""
    names: Set[str] = set()
    for node in iter_body_nodes(nodes):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


def _polling_functions(module: SourceModule) -> Set[str]:
    """Module-local function names that poll, to call-graph fixpoint."""
    functions: Dict[str, ast.AST] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
    polling: Set[str] = {
        name for name, fn in functions.items()
        if any(_is_poll(n) for n in iter_body_nodes(fn.body))
    }
    changed = True
    while changed:
        changed = False
        for name, fn in functions.items():
            if name in polling:
                continue
            if _called_names(fn.body) & polling:
                polling.add(name)
                changed = True
    return polling


def _is_unbounded_for(node: ast.For) -> bool:
    iterator = node.iter
    if not isinstance(iterator, ast.Call):
        return False
    func = iterator.func
    if isinstance(func, ast.Attribute) and func.attr == "count" and \
            isinstance(func.value, ast.Name) and func.value.id == "itertools":
        return True
    if isinstance(func, ast.Name):
        if func.id == "count":
            return True
        if func.id == "iter" and len(iterator.args) == 2:
            return True
    return False


def check_deadline_polls(module: SourceModule) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    polling = _polling_functions(module)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.While):
            kind = "while"
        elif isinstance(node, ast.For) and _is_unbounded_for(node):
            kind = "unbounded for"
        else:
            continue
        body = list(iter_body_nodes(node.body))
        if any(_is_poll(n) for n in body):
            continue
        called = {
            n.func.id if isinstance(n.func, ast.Name) else n.func.attr
            for n in body
            if isinstance(n, ast.Call)
            and isinstance(n.func, (ast.Name, ast.Attribute))
        }
        if called & polling:
            continue
        findings.append(module.finding(
            "RS002", "unpolled-loop", node,
            f"{kind} loop has no Deadline.check/tick on any path through "
            "its body; a supervised run can wedge here — poll the ambient "
            "deadline (repro.guard.current_deadline) inside the loop",
            loop_kind=kind,
        ))
    return findings


register_checker(CheckerSpec(
    code="RS002",
    name="deadline-poll-coverage",
    description=(
        "every while/unbounded-for loop in a pipeline package polls the "
        "ambient Deadline on some path through its body"
    ),
    scope=frozenset({"tlsim", "rewriting", "encode", "sat", "witness",
                     "eufm", "decision", "service"}),
    run_file=check_deadline_polls,
))
