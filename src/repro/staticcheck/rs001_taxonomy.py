"""RS001 — exception-taxonomy discipline on verification paths.

PR 1 introduced the structured exception hierarchy of
:mod:`repro.errors` precisely so the campaign runner can distinguish
recoverable failures (a budget to escalate, a rewriting pass that did
not conform) from programming errors.  That contract only holds if the
verification-path packages never smuggle a broad builtin exception past
it: a ``raise RuntimeError`` inside the encoder is invisible to the
retry logic, and a bare ``except:`` swallows ``BudgetExhausted`` (and
``KeyboardInterrupt``) wholesale.

Checks, scoped to ``repro.{core,encode,sat,rewriting,decision,tlsim}``:

* ``bare-except`` — an ``except:`` clause with no exception type;
* ``blind-except`` — ``except BaseException:`` (swallows even
  ``KeyboardInterrupt``/``SystemExit``; catching ``Exception`` for
  containment is allowed);
* ``builtin-raise`` — raising one of the broad builtins the taxonomy
  replaces (``Exception``, ``RuntimeError``, ``TimeoutError``,
  ``MemoryError``...).  Narrow contract errors (``ValueError``,
  ``TypeError``, ``KeyError``, ``NotImplementedError``...) stay legal:
  they signal caller bugs, not verification outcomes.

A bare re-raise (``raise`` with no operand) is always allowed.
"""

from __future__ import annotations

import ast
from typing import List

from ..analysis.diagnostics import Diagnostic
from .engine import CheckerSpec, SourceModule, register_checker

__all__ = ["BANNED_RAISES", "check_taxonomy"]

#: builtins whose *raising* the taxonomy forbids on verification paths —
#: each has a structured replacement in :mod:`repro.errors`.
BANNED_RAISES = frozenset({
    "Exception": "ReproError",
    "BaseException": "ReproError",
    "RuntimeError": "ReproError (or SolverError / EncodingError)",
    "TimeoutError": "BudgetExhausted",
    "MemoryError": "MemoryBudgetExhausted",
    "SystemError": "ReproError",
    "OSError": "ReproError",
    "EnvironmentError": "ReproError",
}.items())

_BANNED = dict(BANNED_RAISES)


def _raised_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    # builtins spelled via the module: ``builtins.RuntimeError``.
    if isinstance(exc, ast.Attribute) and isinstance(exc.value, ast.Name) \
            and exc.value.id == "builtins":
        return exc.attr
    return ""


def check_taxonomy(module: SourceModule) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                findings.append(module.finding(
                    "RS001", "bare-except", node,
                    "bare 'except:' on a verification path swallows "
                    "BudgetExhausted and KeyboardInterrupt; catch a class "
                    "from the repro.errors hierarchy",
                ))
            elif isinstance(node.type, ast.Name) and \
                    node.type.id == "BaseException":
                findings.append(module.finding(
                    "RS001", "blind-except", node,
                    "'except BaseException:' swallows interpreter exits; "
                    "catch Exception or a repro.errors class",
                ))
        elif isinstance(node, ast.Raise) and node.exc is not None:
            name = _raised_name(node)
            replacement = _BANNED.get(name)
            if replacement is not None:
                findings.append(module.finding(
                    "RS001", "builtin-raise", node,
                    f"raising builtin {name} bypasses the repro.errors "
                    f"taxonomy; raise {replacement} instead",
                    exception=name,
                ))
    return findings


register_checker(CheckerSpec(
    code="RS001",
    name="exception-taxonomy",
    description=(
        "verification-path packages raise repro.errors classes, never "
        "broad builtins, and never use bare except clauses"
    ),
    scope=frozenset({"core", "encode", "sat", "rewriting", "decision",
                     "tlsim"}),
    run_file=check_taxonomy,
))
