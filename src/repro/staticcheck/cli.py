"""``python -m repro staticcheck`` — the self-hosting invariant checker.

Examples::

    python -m repro staticcheck                       # scan src/repro
    python -m repro staticcheck src/repro --json
    python -m repro staticcheck --sarif --output staticcheck.sarif
    python -m repro staticcheck --baseline .staticcheck-baseline.json
    python -m repro staticcheck --select RS002,RS006
    python -m repro staticcheck --baseline .staticcheck-baseline.json \\
        --update-baseline   # re-capture exemptions, keeping justifications

Exit status mirrors ``python -m repro lint``: 0 — no (non-baselined)
error-level findings; 1 — at least one; 2 — the run itself was
misconfigured (unknown checker code, unreadable baseline, missing
path).  ``--json`` emits the same report schema as ``repro lint``
(``max_severity`` / ``summary`` / ``findings``) because both CLIs share
the :class:`~repro.analysis.diagnostics.Diagnostic` record and
:class:`~repro.analysis.diagnostics.AnalysisReport` wrapper.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from ..analysis.diagnostics import AnalysisReport, Diagnostic
from ..errors import ReproError
from .baseline import Baseline, apply_baseline
from .engine import all_checkers, run_project
from .sarif import to_sarif

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro staticcheck",
        description=(
            "Statically check the code-level invariants the verification "
            "pipeline relies on (exception taxonomy, deadline polls, "
            "single-writer journal, picklable payloads, ContextVar "
            "hygiene, rule-registry confluence)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/repro)",
    )
    output = parser.add_mutually_exclusive_group()
    output.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-lint JSON report schema on stdout",
    )
    output.add_argument(
        "--sarif",
        action="store_true",
        help="emit a SARIF 2.1.0 report on stdout",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the --json/--sarif report to FILE as well as gating "
        "on the exit code",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in this committed baseline; "
        "stale entries are reported as warnings",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings, keeping "
        "existing justifications (then exit 0)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated checker codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated checker codes to skip",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip project-level checkers (RS006 rule-registry analysis)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only errors and warnings (human output)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list the registered checkers and exit",
    )
    return parser


def _default_paths() -> List[str]:
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    return ["."]


def _split_codes(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [chunk for chunk in text.split(",") if chunk.strip()]


def _emit(text: str, output: Optional[str]) -> None:
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        for spec in all_checkers():
            kind = "project" if spec.run_project else "file"
            scope = ",".join(sorted(spec.scope)) if spec.scope else "all"
            print(f"{spec.code}  {spec.name}  [{kind}; scope: {scope}]")
            print(f"       {spec.description}")
        return 0
    try:
        paths = list(args.paths) or _default_paths()
        findings = run_project(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            project_checks=not args.no_project,
        )

        if args.update_baseline:
            if not args.baseline:
                raise ReproError("--update-baseline requires --baseline FILE")
            previous = None
            if os.path.exists(args.baseline):
                previous = Baseline.load(args.baseline)
            captured = [d for d in findings if d.is_error]
            Baseline.from_findings(captured, previous).save(args.baseline)
            print(
                f"baseline {args.baseline} updated: "
                f"{len(captured)} exemption(s) recorded"
            )
            return 0

        suppressed: List[Diagnostic] = []
        if args.baseline:
            baseline = Baseline.load(args.baseline)
            findings, suppressed, stale = apply_baseline(findings, baseline)
            findings.extend(stale)
    except ReproError as exc:
        print(f"staticcheck failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2

    report = AnalysisReport(findings)
    if args.json:
        _emit(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              args.output)
    elif args.sarif:
        _emit(json.dumps(to_sarif(findings), indent=2, sort_keys=True),
              args.output)
    else:
        shown = report
        if args.quiet:
            shown = AnalysisReport(
                [d for d in report.diagnostics if d.severity != "info"]
            )
        print(shown.render(title="Staticcheck findings"))
        if suppressed:
            print(f"{len(suppressed)} finding(s) suppressed by the baseline")
        if report.has_errors:
            print(
                f"\n{len(report.errors)} invariant violation(s) found",
                file=sys.stderr,
            )
    return report.exit_code
