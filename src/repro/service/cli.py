"""``python -m repro serve`` — run the verification service.

Examples::

    python -m repro serve --data-dir ./service-data
    python -m repro serve --port 8080 --max-running 2 --session-workers 2
    python -m repro serve --queue-limit 4 --breaker 3 --deadline 30

The server prints one ``ready`` line with the bound address once it is
accepting requests (port 0 picks a free port — the line is how scripts
learn which).  State lives entirely under ``--data-dir``; killing the
server (even ``kill -9``) and restarting it with the same directory
re-attaches every session: finished jobs are replayed from the
journals, in-flight jobs resume, and the result cache keeps serving.

A quick round-trip with curl::

    curl -s localhost:8080/version
    curl -s -X POST localhost:8080/v1/sessions \\
        -d '{"grid": "4x2,8x2", "certify": true}'
    curl -s localhost:8080/v1/sessions/<id>?wait=10
    curl -s localhost:8080/v1/sessions/<id>/result
    curl -s localhost:8080/v1/artifacts/<digest>
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from ..campaign.runner import DegradePolicy, RetryPolicy
from ..errors import SolverError
from .app import ServiceApp
from .sessions import SessionManager

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Long-lived verification service: HTTP/JSON job submission, "
            "a content-addressed result cache, journal-backed sessions "
            "that survive kill -9, and explicit backpressure."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default localhost)"
    )
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks a free one (default 8080)",
    )
    parser.add_argument(
        "--data-dir", default="./repro-service", metavar="DIR",
        help="service state root: cache/, artifacts/, sessions/ "
        "(default ./repro-service)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="max sessions admitted but not finished; beyond it submits "
        "get 429 + Retry-After (default 16)",
    )
    parser.add_argument(
        "--max-running", type=int, default=1, metavar="N",
        help="sessions running concurrently (default 1)",
    )
    parser.add_argument(
        "--session-workers", type=int, default=1, metavar="N",
        help="campaign worker processes per session (default 1)",
    )
    parser.add_argument(
        "--breaker", type=int, default=None, metavar="K",
        help="short-circuit a config family after K consecutive "
        "INCONCLUSIVE outcomes, service-wide (default: off)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="A",
        help="verification attempts per method per job (default 3)",
    )
    parser.add_argument(
        "--escalation", type=float, default=2.0, metavar="F",
        help="budget multiplier between attempts (default 2.0)",
    )
    parser.add_argument(
        "--max-conflicts", type=int, default=None, metavar="N",
        help="default base SAT conflict budget per attempt",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="default base pipeline-wide deadline per attempt, seconds",
    )
    parser.add_argument(
        "--max-memory", type=float, default=None, metavar="MB",
        help="default base memory budget per attempt, MiB",
    )
    parser.add_argument(
        "--no-degrade", action="store_true",
        help="go straight to INCONCLUSIVE instead of falling back to "
        "positive_equality",
    )
    parser.add_argument(
        "--sat-backend", default=None, metavar="NAME",
        help="SAT backend for every session's verifications: reference "
        "(in-tree CDCL, default), pysat, dimacs, or auto; verdicts are "
        "backend-independent, so cache keys are unaffected",
    )
    parser.add_argument(
        "--no-incremental-sat", action="store_true",
        help="solve every CNF cold instead of resuming same-digest SAT "
        "sessions across a campaign's jobs and retries",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


async def _serve(app: ServiceApp, host: str, port: int,
                 log) -> None:
    bound_host, bound_port = await app.start(host, port)
    print(f"ready http://{bound_host}:{bound_port}", flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signame in ("SIGINT", "SIGTERM"):
        try:
            loop.add_signal_handler(
                getattr(signal, signame), stop.set
            )
        except (NotImplementedError, OSError):  # pragma: no cover
            pass
    serve_task = asyncio.ensure_future(app.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait(
            {serve_task, stop_task},
            return_when=asyncio.FIRST_COMPLETED,
        )
    finally:
        serve_task.cancel()
        stop_task.cancel()
        log("shutting down")
        await app.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = (lambda message: None) if args.quiet else (
        lambda message: print(message, flush=True)
    )
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        escalation=args.escalation,
        base_conflicts=args.max_conflicts
        if args.max_conflicts is not None
        else RetryPolicy.base_conflicts,
        base_wall_seconds=args.deadline,
        base_memory_mb=args.max_memory,
    )
    try:
        manager = SessionManager(
            args.data_dir,
            queue_limit=args.queue_limit,
            max_running=args.max_running,
            session_workers=args.session_workers,
            breaker_threshold=args.breaker,
            retry=retry,
            degrade=DegradePolicy(
                fallback_method=None if args.no_degrade else "positive_equality"
            ),
            sat_backend=args.sat_backend,
            incremental_sat=not args.no_incremental_sat,
            log=log,
        )
    except (SolverError, OSError) as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2
    requeued = manager.reattach()
    if requeued:
        log(f"re-attached {len(requeued)} unfinished session(s)")
    app = ServiceApp(manager)
    try:
        asyncio.run(_serve(app, args.host, args.port, log))
    except KeyboardInterrupt:  # pragma: no cover - signal path
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
