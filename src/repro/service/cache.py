"""Content-addressed, disk-persistent verification result cache.

Every entry is one terminal verification verdict, addressed by
:func:`repro.core.keys.canonical_key` — a SHA-256 over the processor
configuration, the verdict-relevant options, and the rewrite-rule
registry version.  Two requests with the same key are interchangeable
by construction, so the service answers the second from disk without
touching the solver; a registry change rolls every key over and the
stale entries are simply never hit again.

Storage layout (under the cache root)::

    ab/abcdef....json          # one JSON document per key, sharded by
                               # the key's first two hex digits

Writes are atomic (temp file + ``os.replace``) and idempotent — losing
a race to another writer leaves the same bytes either way, so the cache
needs no lock.  A SIGKILL can at worst leave a ``*.tmp`` orphan, which
is ignored by readers and overwritten by the next writer.

Only *definitive* outcomes are cached — ``PROVED`` and ``BUG_FOUND``.
``INCONCLUSIVE`` means "the budget ran out", a property of the request's
budgets rather than of the configuration, and budgets are deliberately
not part of the key; caching it would serve one client's exhaustion as
another client's verdict.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["CacheEntry", "ResultCache", "CACHEABLE_STATES"]

#: Statuses worth caching; see the module docstring for the argument.
CACHEABLE_STATES = ("PROVED", "BUG_FOUND")


@dataclass
class CacheEntry:
    """One cached verdict plus its provenance."""

    key: str
    #: the terminal :meth:`repro.campaign.jobs.JobResult.to_dict` record.
    result: Dict[str, Any]
    #: canonical config/options the key was derived from (debuggability:
    #: a cache file is self-describing without reversing the hash).
    config: Dict[str, Any] = field(default_factory=dict)
    options: Dict[str, Any] = field(default_factory=dict)
    registry_version: str = ""
    repro_version: str = ""
    #: digests of artifacts in the :class:`~repro.service.store
    #: .ArtifactStore` this entry references (witness proof, ...).
    artifacts: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "result": self.result,
            "config": self.config,
            "options": self.options,
            "registry_version": self.registry_version,
            "repro_version": self.repro_version,
            "artifacts": self.artifacts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheEntry":
        return cls(
            key=data["key"],
            result=dict(data.get("result", {})),
            config=dict(data.get("config", {})),
            options=dict(data.get("options", {})),
            registry_version=str(data.get("registry_version", "")),
            repro_version=str(data.get("repro_version", "")),
            artifacts=list(data.get("artifacts", [])),
        )


class ResultCache:
    """Disk-backed content-addressed verdict cache; see module docs."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, key: str) -> str:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"not a canonical cache key: {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[CacheEntry]:
        """The cached entry for ``key``, or ``None`` on a miss.

        Unreadable or torn entries count as misses — the caller recomputes
        and overwrites them — so a corrupt file can never wedge a key.
        """
        path = self._path(key)  # malformed keys raise, they never miss
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (FileNotFoundError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("key") != key:
            return None
        try:
            return CacheEntry.from_dict(data)
        except (KeyError, TypeError):
            return None

    def put(self, entry: CacheEntry) -> bool:
        """Persist one entry; returns False when its status is uncacheable.

        Atomic and last-writer-wins: concurrent writers of the same key
        are writing the same verdict (the key pins every input), so
        either ordering leaves a valid entry.
        """
        status = entry.result.get("status")
        if status not in CACHEABLE_STATES:
            return False
        path = self._path(entry.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = json.dumps(entry.to_dict(), sort_keys=True, indent=1)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return True

    # ------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Every cached key (directory scan; for stats and tests)."""
        try:
            shards = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
