"""Persistent content-addressed artifact store for witness evidence.

DRUP proofs and counterexample witnesses are the heavyweight outputs of
``certify`` runs; the campaign journal deliberately records only their
digests.  The service persists the full artifact bytes here so the
``GET /v1/artifacts/{digest}`` endpoint can serve them long after the
producing session ended — and so a cache hit on a certified verdict can
still hand out its proof.

Artifacts are addressed by the *witness digest*
(:meth:`repro.witness.types.Witness.digest` — a SHA-256 prefix of the
canonical evidence), which is exactly the digest journaled in campaign
finish records and echoed in result payloads: clients read the digest
off a result and fetch the artifact with it, no extra mapping required.
Writes are atomic and idempotent like the result cache's; a stored
artifact is immutable.

:class:`ArtifactStoringVerify` is the seam that feeds the store: a
picklable ``verify_fn`` wrapper the session installs in the campaign
executor, so artifact persistence works identically in-process and in
``--session-workers`` worker processes (each worker re-opens the store
by path; the blobs are content-addressed, so concurrent writers of the
same artifact commute).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = ["ArtifactStore", "ArtifactStoringVerify"]


class ArtifactStore:
    """Immutable content-addressed blob store; see the module docstring."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, digest: str) -> str:
        if len(digest) < 3 or not all(
            c in "0123456789abcdef" for c in digest
        ):
            raise ValueError(f"not an artifact digest: {digest!r}")
        return os.path.join(self.root, digest[:2], digest)

    def put(
        self, digest: str, data: bytes,
        media_type: str = "application/octet-stream",
    ) -> str:
        """Store ``data`` under ``digest``; idempotent, returns digest."""
        path = self._path(digest)
        if os.path.exists(path):
            return digest
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._write_meta(digest, media_type, len(data))
        return digest

    def _write_meta(self, digest: str, media_type: str, size: int) -> None:
        meta_path = self._path(digest) + ".meta"
        payload = json.dumps(
            {"media_type": media_type, "size": size}, sort_keys=True
        )
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(meta_path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, meta_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def get(self, digest: str) -> Optional[bytes]:
        path = self._path(digest)  # malformed digests raise, never miss
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def media_type(self, digest: str) -> str:
        try:
            with open(self._path(digest) + ".meta", encoding="utf-8") as fh:
                return str(json.load(fh).get(
                    "media_type", "application/octet-stream"
                ))
        except (FileNotFoundError, ValueError):
            return "application/octet-stream"

    def has(self, digest: str) -> bool:
        try:
            return os.path.exists(self._path(digest))
        except ValueError:
            return False

    def digests(self):
        """Every stored digest (directory scan)."""
        try:
            shards = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith((".tmp", ".meta")):
                    yield name

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())


class ArtifactStoringVerify:
    """A picklable ``verify_fn`` that archives witness artifacts.

    Behaves exactly like :func:`repro.core.verify` — same signature,
    same result, same exceptions — but when the result carries a witness
    (``certify=True`` runs), its full evidence bytes are persisted to
    the artifact store under the witness digest *before* the result is
    returned, so the digest journaled with the finish record is always
    fetchable.  Holds only the store path, so it pickles cleanly into
    campaign worker processes.
    """

    def __init__(self, store_root: str) -> None:
        self.store_root = os.fspath(store_root)

    def __call__(self, config: Any, **kwargs: Any) -> Any:
        from ..core.verifier import verify

        result = verify(config, **kwargs)
        witness = getattr(result, "witness", None)
        if witness is not None:
            store = ArtifactStore(self.store_root)
            store.put(
                witness.digest(),
                witness.artifact_bytes(),
                media_type=witness.artifact_media_type,
            )
        return result
