"""The asyncio HTTP/JSON transport of the verification service.

A deliberately small HTTP/1.1 server on raw :mod:`asyncio` streams (the
environment ships no third-party HTTP framework, and the service speaks
only JSON and SSE).  One request per connection, explicit
``Connection: close``; blocking work (cache lookups, long-poll waits)
runs in the default executor so the event loop stays responsive under
many concurrent clients.

Endpoints (all JSON unless noted):

=====================================  ==================================
``GET  /healthz``                      liveness probe
``GET  /version``                      package + rule-registry versions
``GET  /metrics``                      service counters and queue stats
``POST /v1/sessions``                  submit a verification request
``GET  /v1/sessions/{id}``             status; ``?wait=S&version=V``
                                       long-polls until the session
                                       version passes ``V``
``GET  /v1/sessions/{id}/result``      verdicts + metrics snapshots
``GET  /v1/sessions/{id}/events``      Server-Sent Events: the session's
                                       journal records as they land
``GET  /v1/artifacts/{digest}``        witness artifact bytes (DRUP
                                       proof / counterexample JSON)
=====================================  ==================================

Backpressure surfaces here as HTTP: a full admission queue answers
``429`` with a ``Retry-After`` header (the scheduler's own estimate),
malformed requests ``400``, unknown sessions/artifacts ``404``, and an
oversized body ``413`` — the service never buffers unbounded input.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..campaign.journal import JournalTailer
from .protocol import ServiceError, SubmitRequest
from .sessions import SessionManager

__all__ = ["ServiceApp"]

#: Upper bound on request bodies; a submit request is a few KiB.
MAX_BODY_BYTES = 1 << 20
#: Upper bound on the request line + headers block.
MAX_HEAD_BYTES = 1 << 16
#: Ceiling on one long-poll / SSE attachment; clients re-attach.
MAX_WAIT_SECONDS = 60.0
_SSE_POLL_SECONDS = 0.15


def _version_payload() -> Dict[str, Any]:
    from .. import __version__
    from ..rewriting.version import registry_fingerprint, registry_version

    return {
        "repro": __version__,
        "registry_version": registry_version(),
        "registry_fingerprint": registry_fingerprint(),
    }


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceApp:
    """Binds a :class:`~repro.service.sessions.SessionManager` to HTTP."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        self._server: Optional[asyncio.AbstractServer] = None

    # -- server lifecycle ----------------------------------------------

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, self.manager.stop
        )

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _HttpError as exc:
                await self._send_error(writer, exc)
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            self.manager.metrics.inc("service.requests")
            try:
                await self._dispatch(writer, method, path, body)
            except ServiceError as exc:
                await self._send_error(writer, _HttpError(
                    exc.status, str(exc), exc.retry_after
                ))
            except _HttpError as exc:
                await self._send_error(writer, exc)
            except ConnectionError:
                pass
            except Exception as exc:  # never leak a traceback as a hang
                self.manager.metrics.inc("service.errors")
                await self._send_error(writer, _HttpError(
                    500, f"{type(exc).__name__}: {exc}"
                ))
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large")
        if len(head) > MAX_HEAD_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, target, _http = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return b""
        return await reader.readexactly(length)

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, target: str,
        body: bytes,
    ) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {
            name: values[-1]
            for name, values in parse_qs(url.query).items()
        }
        segments = [seg for seg in path.split("/") if seg]
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
        elif path == "/version" and method == "GET":
            await self._send_json(writer, 200, _version_payload())
        elif path == "/metrics" and method == "GET":
            stats = await asyncio.get_running_loop().run_in_executor(
                None, self.manager.stats
            )
            await self._send_json(writer, 200, stats)
        elif path == "/v1/sessions" and method == "POST":
            await self._submit(writer, body)
        elif len(segments) == 3 and segments[:2] == ["v1", "sessions"]:
            self._require(method, "GET")
            await self._status(writer, segments[2], query)
        elif len(segments) == 4 and segments[:2] == ["v1", "sessions"] \
                and segments[3] == "result":
            self._require(method, "GET")
            await self._result(writer, segments[2])
        elif len(segments) == 4 and segments[:2] == ["v1", "sessions"] \
                and segments[3] == "events":
            self._require(method, "GET")
            await self._events(writer, segments[2], query)
        elif len(segments) == 3 and segments[:2] == ["v1", "artifacts"]:
            self._require(method, "GET")
            await self._artifact(writer, segments[2])
        else:
            raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    # -- handlers -------------------------------------------------------

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except ValueError:
            raise _HttpError(400, "body is not valid JSON")
        request = SubmitRequest.parse(payload)
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            None, self.manager.submit, request
        )
        await self._send_json(writer, 200, {
            **session.status_dict(),
            # An all-cache-hit request is already complete: say so, so
            # clients skip the status polling round-trip entirely.
            "complete": session.done(),
        })

    async def _status(
        self, writer: asyncio.StreamWriter, session_id: str,
        query: Dict[str, str],
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            wait = min(float(query.get("wait", 0.0)), MAX_WAIT_SECONDS)
            version = int(query.get("version", -1))
        except ValueError:
            raise _HttpError(400, "wait/version must be numeric")
        if wait > 0:
            session = await loop.run_in_executor(
                None, self.manager.wait_for_change,
                session_id, version, wait,
            )
        else:
            session = await loop.run_in_executor(
                None, self.manager.get, session_id
            )
        await self._send_json(writer, 200, session.status_dict())

    async def _result(
        self, writer: asyncio.StreamWriter, session_id: str
    ) -> None:
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            None, self.manager.get, session_id
        )
        payload = await loop.run_in_executor(
            None, session.result_dict, self.manager.store
        )
        await self._send_json(writer, 200, payload)

    async def _events(
        self, writer: asyncio.StreamWriter, session_id: str,
        query: Dict[str, str],
    ) -> None:
        """SSE: stream the session's journal records as they land."""
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            None, self.manager.get, session_id
        )
        try:
            budget = min(
                float(query.get("wait", MAX_WAIT_SECONDS)), MAX_WAIT_SECONDS
            )
        except ValueError:
            raise _HttpError(400, "wait must be numeric")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        tailer = JournalTailer(session.journal_path)
        # Attachment is bounded by ``budget``: ticks drain pending
        # journal records; the stream ends early once the session is
        # terminal and the journal is drained.  Clients re-attach with a
        # fresh request (their tailer restarts from the top — records
        # are idempotent, keyed by job/attempt).
        ticks = max(1, int(budget / _SSE_POLL_SECONDS))
        for _tick in range(ticks):
            records = await loop.run_in_executor(None, tailer.poll)
            for record in records:
                data = json.dumps(record, sort_keys=True)
                writer.write(f"data: {data}\n\n".encode("utf-8"))
            if records:
                await writer.drain()
            if session.done():
                # One final drain so records between the last poll and
                # the terminal transition are not lost.
                records = await loop.run_in_executor(None, tailer.poll)
                for record in records:
                    data = json.dumps(record, sort_keys=True)
                    writer.write(f"data: {data}\n\n".encode("utf-8"))
                break
            await asyncio.sleep(_SSE_POLL_SECONDS)
        payload = json.dumps(
            {"state": session.state, "version": session.version},
            sort_keys=True,
        )
        writer.write(f"event: state\ndata: {payload}\n\n".encode("utf-8"))
        await writer.drain()

    async def _artifact(
        self, writer: asyncio.StreamWriter, digest: str
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            data = await loop.run_in_executor(
                None, self.manager.store.get, digest
            )
        except ValueError:
            raise _HttpError(400, f"malformed artifact digest {digest!r}")
        if data is None:
            raise _HttpError(404, f"no artifact {digest!r}")
        media_type = await loop.run_in_executor(
            None, self.manager.store.media_type, digest
        )
        self.manager.metrics.inc("service.artifacts_served")
        await self._send_raw(writer, 200, data, media_type)

    # -- responses ------------------------------------------------------

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await self._send_raw(
            writer, status, body, "application/json", retry_after
        )

    async def _send_raw(
        self, writer: asyncio.StreamWriter, status: int, body: bytes,
        media_type: str, retry_after: Optional[float] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {media_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {max(1, int(round(retry_after)))}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: _HttpError
    ) -> None:
        try:
            await self._send_json(
                writer, exc.status, {"error": str(exc)}, exc.retry_after
            )
        except (ConnectionError, OSError):
            pass
