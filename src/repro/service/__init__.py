"""Verification-as-a-service: the async job server.

``python -m repro serve`` wraps the campaign substrate (crash-safe
journal, retry/escalation executor, supervision budgets, witness
certification) in a long-lived asyncio HTTP/JSON service:

* **submit** — ``POST /v1/sessions`` accepts a verification request
  (explicit configs or a grid, plus method/criterion/bug/certify
  options), dedupes every job against the content-addressed result
  cache (:mod:`repro.service.cache`, keyed by
  :func:`repro.core.keys.canonical_key`), and runs the misses on the
  campaign executor under guard budgets;
* **status** — ``GET /v1/sessions/{id}`` (optionally long-polling) and
  ``GET /v1/sessions/{id}/events`` (Server-Sent Events derived from the
  session journal via :class:`repro.campaign.journal.JournalTailer`);
* **result** — ``GET /v1/sessions/{id}/result`` with verdicts, metrics
  snapshots and witness digests;
* **artifact** — ``GET /v1/artifacts/{digest}`` serving DRUP proofs and
  counterexample witnesses from the persistent content-addressed store
  (:mod:`repro.service.store`).

Backpressure is explicit: a bounded admission queue answers ``429`` with
``Retry-After`` when full, a concurrency limit bounds running sessions,
and a service-wide circuit breaker short-circuits config families that
keep ending ``INCONCLUSIVE``.  The server survives ``SIGKILL``: every
session's request document and journal are durable, so a restarted
server re-attaches unfinished sessions and resumes their in-flight jobs
from the journal instead of rerunning finished ones.
"""

from .cache import CacheEntry, ResultCache
from .sessions import Session, SessionManager
from .store import ArtifactStore
from .protocol import ServiceError, SubmitRequest, job_options

__all__ = [
    "ArtifactStore",
    "CacheEntry",
    "ResultCache",
    "ServiceError",
    "Session",
    "SessionManager",
    "SubmitRequest",
    "job_options",
]
