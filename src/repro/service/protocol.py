"""Request/response vocabulary of the verification service.

A *submit request* is a JSON document describing a batch of
verification jobs — either an explicit ``configs`` list or a ``grid``
string (the campaign CLI's ``NxK,...`` shorthand), plus shared
method/criterion/family/bug options (``family`` may also be set per
config), certification and analysis switches, and
optional per-attempt base budgets.  :meth:`SubmitRequest.parse`
validates it into campaign :class:`~repro.campaign.jobs.Job` objects;
:func:`job_options` distills the verdict-relevant options of one job
into the mapping :func:`repro.core.keys.canonical_key` hashes for the
result cache.

Budgets are deliberately *not* part of :func:`job_options`: they bound
the search, not the verdict, and the cache only ever stores definitive
outcomes (see :mod:`repro.service.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..campaign.jobs import Job
from ..errors import CampaignError
from ..processor.bugs import BugKind
from ..processor.families import family_names

__all__ = ["ServiceError", "SubmitRequest", "job_options", "parse_grid"]

#: Hard ceiling on jobs per submit: a single request cannot smuggle in
#: an unbounded campaign; callers split larger sweeps across sessions.
MAX_JOBS_PER_REQUEST = 256

_METHODS = ("rewriting", "positive_equality")
_CRITERIA = ("disjunction", "case_split")
_BUDGET_FIELDS = (
    "max_conflicts", "max_seconds", "max_wall_seconds", "max_memory_mb",
)


class ServiceError(CampaignError):
    """A request the service refuses; carries the HTTP status to answer.

    ``retry_after`` is set on backpressure refusals (429) so the
    transport layer can emit a ``Retry-After`` header.
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def parse_grid(grid: str) -> List[Tuple[int, int]]:
    """Parse the campaign CLI's ``N1xK1,N2xK2,...`` grid shorthand."""
    from ..campaign.cli import _parse_grid

    return _parse_grid(grid)


def job_options(job: Job, certify: bool, analyze: bool) -> Dict[str, Any]:
    """The verdict-relevant options of one job, for cache keying.

    Everything that changes the verdict or its recorded evidence is
    here — method, criterion, the planted bug, and the certify/analyze
    switches (they decide whether diagnostics and witness artifacts
    exist in the cached record).  Budgets are excluded by design.
    """
    return {
        "method": job.method,
        "criterion": job.criterion,
        "bug_kind": job.bug_kind,
        "bug_entry": job.bug_entry if job.bug_kind is not None else None,
        "bug_operand": job.bug_operand if job.bug_kind is not None else None,
        "certify": certify or None,
        "analyze": analyze or None,
    }


@dataclass
class SubmitRequest:
    """One validated submit request: jobs plus shared run options."""

    jobs: List[Job]
    certify: bool = False
    analyze: bool = False
    #: free-form client label, echoed in session records (provenance).
    client: str = ""
    #: raw budget fields forwarded to the jobs (already applied).
    budgets: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, payload: Any) -> "SubmitRequest":
        """Validate a decoded JSON body; raises :class:`ServiceError`."""
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        unknown = set(payload) - {
            "configs", "grid", "method", "criterion", "family", "bug",
            "certify", "analyze", "client", "budgets",
        }
        if unknown:
            raise ServiceError(
                400, f"unknown request field(s): {sorted(unknown)}"
            )
        method = payload.get("method", "rewriting")
        if method not in _METHODS:
            raise ServiceError(
                400, f"unknown method {method!r}; use one of {_METHODS}"
            )
        criterion = payload.get("criterion", "disjunction")
        if criterion not in _CRITERIA:
            raise ServiceError(
                400,
                f"unknown criterion {criterion!r}; use one of {_CRITERIA}",
            )
        family = payload.get("family", "reg-reg")
        if not isinstance(family, str) or family not in family_names():
            raise ServiceError(
                400,
                f"unknown family {family!r}; use one of {family_names()}",
            )
        bug = payload.get("bug")
        bug_fields: Dict[str, Any] = {}
        if bug is not None:
            if not isinstance(bug, Mapping) or "kind" not in bug:
                raise ServiceError(
                    400, "bug must be an object with a 'kind' field"
                )
            if bug["kind"] not in BugKind.ALL:
                raise ServiceError(
                    400,
                    f"unknown bug kind {bug['kind']!r}; "
                    f"use one of {BugKind.ALL}",
                )
            bug_fields = {
                "bug_kind": bug["kind"],
                "bug_entry": int(bug.get("entry", 1)),
                "bug_operand": int(bug.get("operand", 1)),
            }
        budgets_in = payload.get("budgets") or {}
        if not isinstance(budgets_in, Mapping):
            raise ServiceError(400, "budgets must be a JSON object")
        bad_budget = set(budgets_in) - set(_BUDGET_FIELDS)
        if bad_budget:
            raise ServiceError(
                400,
                f"unknown budget field(s): {sorted(bad_budget)}; "
                f"use {_BUDGET_FIELDS}",
            )
        budgets = {
            name: budgets_in[name]
            for name in _BUDGET_FIELDS
            if budgets_in.get(name) is not None
        }

        configs: List[Dict[str, Any]] = []
        raw_configs = payload.get("configs")
        if raw_configs is not None:
            if not isinstance(raw_configs, list):
                raise ServiceError(400, "configs must be a JSON list")
            for item in raw_configs:
                if not isinstance(item, Mapping) or "n_rob" not in item \
                        or "issue_width" not in item:
                    raise ServiceError(
                        400,
                        "each config needs n_rob and issue_width "
                        "(optionally retire_width, family)",
                    )
                item_family = item.get("family", family)
                if not isinstance(item_family, str) \
                        or item_family not in family_names():
                    raise ServiceError(
                        400,
                        f"unknown family {item_family!r}; "
                        f"use one of {family_names()}",
                    )
                configs.append({
                    "n_rob": int(item["n_rob"]),
                    "issue_width": int(item["issue_width"]),
                    "retire_width": item.get("retire_width"),
                    "family": item_family,
                })
        grid = payload.get("grid")
        if grid is not None:
            if not isinstance(grid, str):
                raise ServiceError(400, "grid must be a string like '4x2,8x2'")
            try:
                for n_rob, width in parse_grid(grid):
                    configs.append({"n_rob": n_rob, "issue_width": width,
                                    "retire_width": None, "family": family})
            except CampaignError as exc:
                raise ServiceError(400, str(exc))
        if not configs:
            raise ServiceError(
                400, "request names no work: provide configs and/or grid"
            )
        if len(configs) > MAX_JOBS_PER_REQUEST:
            raise ServiceError(
                400,
                f"request names {len(configs)} jobs; the per-request "
                f"ceiling is {MAX_JOBS_PER_REQUEST}",
            )

        jobs: List[Job] = []
        seen_ids: Dict[str, int] = {}
        for spec in configs:
            try:
                job = Job.build(
                    spec["n_rob"],
                    spec["issue_width"],
                    retire_width=spec["retire_width"],
                    family=spec["family"],
                    method=method,
                    criterion=criterion,
                    **bug_fields,
                    **budgets,
                )
                # Job.build defers configuration validation to run time
                # (campaign semantics: a bad config lands INCONCLUSIVE);
                # the service rejects it up front instead of admitting a
                # job that can only fail.
                job.config()
            except (CampaignError, ValueError) as exc:
                raise ServiceError(400, f"bad configuration {spec}: {exc}")
            # Duplicate configurations in one request keep distinct job
            # ids (the journal requires uniqueness); the session dedupes
            # them by cache key before any work runs.
            count = seen_ids.get(job.job_id, 0)
            seen_ids[job.job_id] = count + 1
            if count:
                job = Job.from_dict(
                    {**job.to_dict(), "job_id": f"{job.job_id}~{count + 1}"}
                )
            jobs.append(job)
        return cls(
            jobs=jobs,
            certify=bool(payload.get("certify", False)),
            analyze=bool(payload.get("analyze", False)),
            client=str(payload.get("client", "")),
            budgets=budgets,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Durable form written to the session directory (restart food)."""
        return {
            "jobs": [job.to_dict() for job in self.jobs],
            "certify": self.certify,
            "analyze": self.analyze,
            "client": self.client,
            "budgets": self.budgets,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitRequest":
        return cls(
            jobs=[Job.from_dict(spec) for spec in data.get("jobs", [])],
            certify=bool(data.get("certify", False)),
            analyze=bool(data.get("analyze", False)),
            client=str(data.get("client", "")),
            budgets=dict(data.get("budgets", {})),
        )
