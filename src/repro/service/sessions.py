"""Session model and scheduler of the verification service.

A *session* is one accepted submit request: a batch of verification
jobs, each first deduped against the content-addressed result cache and
then — for the misses — run on the campaign executor against the
session's own crash-safe journal.  The session directory

::

    <data_dir>/sessions/<session_id>/
        request.json     # the validated request, written before accept
        journal.jsonl    # the campaign journal of the cache-miss jobs

is the durable truth: everything the server holds in memory is derived
from it plus the cache, which is what makes SIGKILL survivable.  On
startup :meth:`SessionManager.reattach` scans the directory, replays
each journal, and re-queues sessions with unfinished jobs — in-flight
jobs resume under the journal's usual semantics (finished jobs are never
re-run; the attempt that was in flight re-runs at the same escalated
budget) instead of starting over.

Scheduling and backpressure are explicit and bounded:

* a bounded **admission queue** (``queue_limit``) — when full, submits
  are refused with HTTP 429 and a ``Retry-After`` hint rather than
  accepted into an unbounded backlog;
* a **running-session limit** (``max_running`` scheduler threads), and a
  per-session worker count (``session_workers``) bounding each
  campaign's process fan-out — together the service's concurrency
  ceiling;
* a service-wide **circuit breaker** shared across sessions: config
  families that keep ending ``INCONCLUSIVE`` are short-circuited at
  admission (and mid-campaign by the runner's own breaker), so known
  budget sinks stop consuming capacity.

The manager is plain threads + locks (no asyncio): the HTTP layer
(:mod:`repro.service.app`) calls into it from executor threads, and unit
tests drive it directly.
"""

from __future__ import annotations

import json
import os
import queue
import secrets
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..campaign.journal import Journal
from ..campaign.jobs import Job, JobResult
from ..errors import CampaignError
from ..campaign.runner import CampaignRunner, DegradePolicy, RetryPolicy
from ..core.keys import canonical_key, config_dict
from ..guard.breaker import SHORT_CIRCUIT_PREFIX, CircuitBreaker
from ..obs.metrics import MetricsRegistry
from ..sat.backend import resolve_backend
from .cache import CacheEntry, ResultCache
from .protocol import ServiceError, SubmitRequest, job_options
from .store import ArtifactStore, ArtifactStoringVerify

__all__ = ["JobView", "Session", "SessionManager"]

#: Session lifecycle: ``queued`` (admitted, waiting for a scheduler
#: slot) → ``running`` (campaign in progress) → ``completed``; or
#: ``failed`` when the campaign machinery itself errored (not a job
#: verdict — BUG_FOUND sessions still complete).
SESSION_STATES = ("queued", "running", "completed", "failed")


@dataclass
class JobView:
    """One job's place in a session, as the API reports it."""

    job: Job
    cache_key: str
    #: ``cached`` | ``deduped`` | ``short-circuited`` | ``pending`` |
    #: ``running`` | ``done``
    state: str
    result: Optional[Dict[str, Any]] = None
    #: served from the result cache without running anything.
    cached: bool = False
    #: job id of the same-key sibling in this request this one follows.
    duplicate_of: Optional[str] = None

    def status_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "state": self.state,
            "cache_key": self.cache_key,
            "cached": self.cached,
        }
        if self.result is not None:
            out["status"] = self.result.get("status")
        if self.duplicate_of:
            out["duplicate_of"] = self.duplicate_of
        return out


@dataclass
class Session:
    """In-memory view of one accepted request; durable truth is on disk."""

    session_id: str
    request: SubmitRequest
    directory: str
    state: str = "queued"
    created: float = field(default_factory=time.time)
    jobs: Dict[str, JobView] = field(default_factory=dict)
    error: str = ""
    #: bumped on every observable change; long-pollers wait on it.
    version: int = 0

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, "journal.jsonl")

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {"total": len(self.jobs)}
        for view in self.jobs.values():
            tally[view.state] = tally.get(view.state, 0) + 1
        return tally

    def status_dict(self) -> Dict[str, Any]:
        return {
            "session": self.session_id,
            "state": self.state,
            "version": self.version,
            "created": self.created,
            "client": self.request.client,
            "error": self.error,
            "jobs": self.counts(),
            "job_states": {
                job_id: view.status_dict()
                for job_id, view in self.jobs.items()
            },
        }

    def result_dict(self, store: ArtifactStore) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        for job_id, view in self.jobs.items():
            if view.result is None:
                continue
            entry = dict(view.result)
            entry["cached"] = view.cached
            entry["cache_key"] = view.cache_key
            witness = entry.get("witness") or {}
            digest = witness.get("digest")
            entry["artifacts"] = (
                [digest] if digest and store.has(digest) else []
            )
            results[job_id] = entry
        return {
            "session": self.session_id,
            "state": self.state,
            "error": self.error,
            "results": results,
        }

    def done(self) -> bool:
        return self.state in ("completed", "failed")


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    """Durably (fsync) write a JSON document via temp-file + rename."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class SessionManager:
    """Owns the cache, the artifact store, and the session scheduler.

    Args:
        data_dir: service state root (``cache/``, ``artifacts/``,
            ``sessions/`` live under it).
        queue_limit: max sessions admitted but not yet finished running;
            beyond it, :meth:`submit` raises a 429 :class:`ServiceError`.
        max_running: scheduler threads = sessions running concurrently.
        session_workers: ``workers`` for each session's campaign runner
            (1 = in-process; >1 fans out to a multiprocessing pool).
        breaker_threshold: consecutive ``INCONCLUSIVE`` outcomes per
            config family before the service short-circuits the family,
            both at admission and inside each campaign; ``None`` = off.
        retry / degrade: campaign policies shared by every session
            (request budgets ride on the jobs themselves).
        sat_backend: SAT backend name every session's campaign runner
            installs around its verifications (see
            :mod:`repro.sat.backend`); ``None`` keeps the default.
            Backends are verdict-equivalent by contract, so this is
            deliberately **not** part of the result-cache key.
        incremental_sat: let each campaign resume same-digest SAT
            sessions (learned clauses, variable activities) across jobs
            and retries instead of solving every CNF cold.
        verify_fn: test seam; defaults to the artifact-storing wrapper
            around :func:`repro.core.verify`.
    """

    def __init__(
        self,
        data_dir: str,
        queue_limit: int = 16,
        max_running: int = 1,
        session_workers: int = 1,
        breaker_threshold: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        degrade: Optional[DegradePolicy] = None,
        sat_backend: Optional[str] = None,
        incremental_sat: bool = True,
        verify_fn: Optional[Callable] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if queue_limit < 1:
            raise ServiceError(500, "queue_limit must be at least 1")
        if max_running < 1:
            raise ServiceError(500, "max_running must be at least 1")
        self.data_dir = os.fspath(data_dir)
        self.sessions_dir = os.path.join(self.data_dir, "sessions")
        os.makedirs(self.sessions_dir, exist_ok=True)
        self.cache = ResultCache(os.path.join(self.data_dir, "cache"))
        self.store = ArtifactStore(os.path.join(self.data_dir, "artifacts"))
        self.queue_limit = queue_limit
        self.max_running = max_running
        self.session_workers = session_workers
        self.breaker_threshold = breaker_threshold
        self.retry = retry or RetryPolicy()
        self.degrade = degrade or DegradePolicy()
        if sat_backend is not None:
            # Fail at boot, not when the first session starts running.
            resolve_backend(sat_backend)
        self.sat_backend = sat_backend
        self.incremental_sat = incremental_sat
        self.verify_fn = verify_fn or ArtifactStoringVerify(self.store.root)
        self._log = log or (lambda message: None)
        self.metrics = MetricsRegistry()
        self._breaker = (
            CircuitBreaker(breaker_threshold)
            if breaker_threshold is not None else None
        )
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self.sessions: Dict[str, Session] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._pending = 0          # admitted, not yet finished running
        self._stopping = False
        self._threads: List[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spin up the scheduler threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.max_running):
            thread = threading.Thread(
                target=self._scheduler_loop,
                name=f"repro-session-runner-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the scheduler threads."""
        with self._lock:
            self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._threads = []

    # -- submission -----------------------------------------------------

    def submit(self, request: SubmitRequest) -> Session:
        """Admit one request; returns the (possibly already-complete)
        session.  Raises a 429 :class:`ServiceError` on backpressure."""
        self.metrics.inc("service.submits")
        session_id = secrets.token_hex(8)
        directory = os.path.join(self.sessions_dir, session_id)
        session = Session(
            session_id=session_id, request=request, directory=directory
        )
        self._build_job_views(session)
        to_run = [
            view.job for view in session.jobs.values()
            if view.state == "pending"
        ]
        with self._lock:
            if self._stopping:
                raise ServiceError(503, "server is shutting down")
            if to_run and self._pending >= self.queue_limit:
                self.metrics.inc("service.rejected_429")
                raise ServiceError(
                    429,
                    f"admission queue is full "
                    f"({self._pending}/{self.queue_limit} sessions pending); "
                    "retry later",
                    retry_after=1.0 + self._pending,
                )
            if to_run:
                self._pending += 1
        # Durable before acknowledged: the request document is what a
        # restarted server re-attaches from.
        try:
            _atomic_write_json(
                os.path.join(directory, "request.json"),
                {"session_id": session_id, "created": session.created,
                 **request.to_dict()},
            )
        except BaseException:
            if to_run:
                with self._lock:
                    self._pending -= 1
            raise
        with self._lock:
            self.sessions[session_id] = session
            if not to_run:
                session.state = "completed"
            session.version += 1
            self._changed.notify_all()
        self.metrics.inc("service.sessions")
        self.metrics.inc("service.jobs", float(len(session.jobs)))
        if to_run:
            self._queue.put(session_id)
            self._log(
                f"session {session_id}: admitted with {len(to_run)} "
                f"job(s) to run, {len(session.jobs) - len(to_run)} served "
                "from cache"
            )
        else:
            self._log(
                f"session {session_id}: fully served from cache "
                f"({len(session.jobs)} job(s))"
            )
        return session

    def _build_job_views(self, session: Session) -> None:
        """Key, dedupe, cache-check and breaker-check every job."""
        request = session.request
        by_key: Dict[str, str] = {}
        for job in request.jobs:
            key = canonical_key(
                job.config(),
                job_options(job, request.certify, request.analyze),
            )
            view = JobView(job=job, cache_key=key, state="pending")
            if key in by_key:
                # Same content key as an earlier job in this request:
                # one run (or one cache hit) serves both.
                view.state = "deduped"
                view.duplicate_of = by_key[key]
                session.jobs[job.job_id] = view
                continue
            by_key[key] = job.job_id
            entry = self.cache.get(key)
            if entry is not None:
                view.state = "cached"
                view.cached = True
                view.result = entry.result
                self.metrics.inc("service.cache.hits")
            elif self._breaker is not None and self._breaker.is_open(
                job.breaker_key()
            ):
                view.state = "short-circuited"
                view.result = JobResult(
                    job_id=job.job_id,
                    status="INCONCLUSIVE",
                    method=job.method,
                    attempts=0,
                    detail=f"{SHORT_CIRCUIT_PREFIX} for family "
                           f"{job.breaker_key()!r} (service breaker)",
                ).to_dict()
                self.metrics.inc("service.breaker_short_circuits")
            else:
                self.metrics.inc("service.cache.misses")
            session.jobs[job.job_id] = view
        # Resolve deduped views against their representative.
        self._propagate_duplicates(session)

    def _propagate_duplicates(self, session: Session) -> None:
        for view in session.jobs.values():
            if view.duplicate_of:
                source = session.jobs[view.duplicate_of]
                if source.result is not None:
                    view.result = dict(
                        source.result, job_id=view.job.job_id
                    )
                    view.cached = source.cached
                    view.state = "done" if source.state in (
                        "done", "cached", "short-circuited"
                    ) else view.state

    # -- re-attach ------------------------------------------------------

    def reattach(self) -> List[str]:
        """Recover sessions from disk after a restart (even SIGKILL).

        Completed sessions come back queryable; sessions with unfinished
        jobs are re-queued and their campaigns resume from the journal.
        Returns the re-queued session ids.
        """
        requeued: List[str] = []
        try:
            entries = sorted(os.listdir(self.sessions_dir))
        except FileNotFoundError:
            return requeued
        for session_id in entries:
            directory = os.path.join(self.sessions_dir, session_id)
            request_path = os.path.join(directory, "request.json")
            if session_id in self.sessions or not os.path.isfile(
                request_path
            ):
                continue
            try:
                with open(request_path, encoding="utf-8") as handle:
                    data = json.load(handle)
                request = SubmitRequest.from_dict(data)
            except (ValueError, KeyError, CampaignError) as exc:
                self._log(
                    f"session {session_id}: unreadable request.json "
                    f"({exc}); skipped"
                )
                continue
            session = Session(
                session_id=session_id,
                request=request,
                directory=directory,
                created=float(data.get("created", time.time())),
            )
            self._build_job_views(session)
            # Fold in results the journal already has (they beat a
            # fresh cache lookup: same verdicts, plus INCONCLUSIVE
            # outcomes the cache refuses to hold).
            replay = Journal.load(session.journal_path)
            finished = replay.finished()
            for view in session.jobs.values():
                record = finished.get(view.job.job_id)
                if record is not None and view.state in (
                    "pending", "cached", "short-circuited"
                ):
                    view.state = "done"
                    view.cached = False
                    view.result = {
                        name: value for name, value in record.items()
                        if name != "event"
                    }
            self._propagate_duplicates(session)
            unfinished = [
                view.job for view in session.jobs.values()
                if view.state == "pending"
            ]
            with self._lock:
                self.sessions[session_id] = session
                if unfinished:
                    session.state = "queued"
                    self._pending += 1
                else:
                    session.state = "completed"
                session.version += 1
                self._changed.notify_all()
            if unfinished:
                self._queue.put(session_id)
                requeued.append(session_id)
                self._log(
                    f"session {session_id}: re-attached with "
                    f"{len(unfinished)} unfinished job(s); resuming"
                )
        if requeued:
            self.metrics.inc("service.reattached", float(len(requeued)))
        return requeued

    # -- scheduler ------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            session_id = self._queue.get()
            if session_id is None:  # shutdown sentinel
                return
            with self._lock:
                session = self.sessions.get(session_id)
            if session is None:
                continue
            try:
                self._run_session(session)
            except Exception as exc:  # campaign machinery failure
                with self._changed:
                    session.state = "failed"
                    session.error = f"{type(exc).__name__}: {exc}"
                    session.version += 1
                    self._changed.notify_all()
                self._log(f"session {session_id}: FAILED — {session.error}")
            finally:
                with self._lock:
                    self._pending -= 1

    def _run_session(self, session: Session) -> None:
        to_run = [
            view.job for view in session.jobs.values()
            if view.state == "pending"
        ]
        with self._changed:
            session.state = "running"
            session.version += 1
            self._changed.notify_all()
        if not to_run:
            with self._changed:
                session.state = "completed"
                session.version += 1
                self._changed.notify_all()
            return
        request = session.request
        runner = CampaignRunner(
            session.journal_path,
            retry=self.retry,
            degrade=self.degrade,
            verify_fn=self.verify_fn,
            on_result=lambda job, result: self._job_finished(
                session, job, result
            ),
            log=self._log,
            analyze=request.analyze,
            certify=request.certify,
            workers=min(self.session_workers, max(1, len(to_run))),
            breaker_threshold=self.breaker_threshold,
            sat_backend=self.sat_backend,
            incremental_sat=self.incremental_sat,
        )
        report = runner.run(to_run)
        self.metrics.merge({
            f"service.campaign.{name}": value
            for name, value in report.metrics.items()
        })
        with self._changed:
            session.state = "completed"
            self._propagate_duplicates(session)
            session.version += 1
            self._changed.notify_all()
        self._log(
            f"session {session.session_id}: completed "
            f"({', '.join(f'{v} {k}' for k, v in report.counts().items())})"
        )

    def _job_finished(
        self, session: Session, job: Job, result: JobResult
    ) -> None:
        """Terminal-result hook: update views, cache, and the breaker."""
        record = result.to_dict()
        view = session.jobs.get(job.job_id)
        with self._changed:
            if view is not None:
                view.state = "done"
                view.result = record
            session.version += 1
            self._changed.notify_all()
        short_circuited = result.detail.startswith(SHORT_CIRCUIT_PREFIX)
        if view is not None and not short_circuited:
            artifacts = []
            witness = record.get("witness") or {}
            if witness.get("digest") and self.store.has(witness["digest"]):
                artifacts.append(witness["digest"])
            request = session.request
            stored = self.cache.put(CacheEntry(
                key=view.cache_key,
                result=record,
                config=config_dict(job.config()),
                options=job_options(job, request.certify, request.analyze),
                registry_version=_registry_version(),
                repro_version=_repro_version(),
                artifacts=artifacts,
            ))
            if stored:
                self.metrics.inc("service.cache.stored")
        if self._breaker is not None and not short_circuited:
            self._breaker.record(
                job.breaker_key(), result.status == "INCONCLUSIVE"
            )

    # -- queries --------------------------------------------------------

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self.sessions.get(session_id)
        if session is None:
            raise ServiceError(404, f"no session {session_id!r}")
        return session

    def wait_for_change(
        self, session_id: str, known_version: int, timeout: float
    ) -> Session:
        """Block until the session's version passes ``known_version`` or
        the timeout elapses (the long-poll primitive)."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._changed:
            while True:
                session = self.sessions.get(session_id)
                if session is None:
                    raise ServiceError(404, f"no session {session_id!r}")
                remaining = deadline - time.monotonic()
                if session.version > known_version or remaining <= 0 \
                        or session.done():
                    return session
                self._changed.wait(min(remaining, 1.0))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for session in self.sessions.values():
                states[session.state] = states.get(session.state, 0) + 1
            pending = self._pending
        return {
            "sessions": states,
            "pending": pending,
            "queue_limit": self.queue_limit,
            "max_running": self.max_running,
            "cache_entries": len(self.cache),
            "artifacts": len(self.store),
            "open_families": (
                list(self._breaker.open_families)
                if self._breaker is not None else []
            ),
            "metrics": self.metrics.values(),
        }


def _repro_version() -> str:
    from .. import __version__

    return __version__


def _registry_version() -> str:
    from ..rewriting.version import registry_version

    return registry_version()
