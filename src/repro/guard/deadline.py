"""Cooperative, ambient deadlines for the verification pipeline.

The paper's wide-issue configurations take hours of CPU, and the eij /
transitivity encodings can blow up exponentially in the worst case; a
service-shaped runtime therefore needs *every* pipeline layer — not just
the CDCL loop — to honor a budget.  A :class:`Deadline` carries a
wall-clock budget, a CPU budget and an optional
:class:`~repro.guard.memory.MemoryBudget`, and is installed as ambient
state via a ContextVar exactly like the observability tracer
(:mod:`repro.obs.tracer`): instrumented layers call
:func:`current_deadline` and talk to whatever they get back.  When no
deadline is installed that is the shared :data:`NULL_DEADLINE`, whose
``check``/``tick``/``charge`` are allocation-free no-ops, so supervision
costs nothing in the default configuration.

Check discipline (mirrors how the layers are instrumented):

* ``check(stage)`` — unconditional; called at stage entry and at coarse
  loop heads (a tlsim cycle, a rewrite entry, a witness-minimization
  variable).  Emits a heartbeat (rate-limited), applies any injected
  stage delay, then tests the wall/CPU/memory budgets and raises
  :class:`~repro.errors.BudgetExhausted` (or
  :class:`~repro.errors.MemoryBudgetExhausted`) naming the stage.
* ``tick(stage)`` — rate-limited; called once per DAG node inside the
  traversal hot loops.  Counts a node against the memory budget and runs
  a full ``check`` every :attr:`tick_every` ticks.

Deadlines compose: :meth:`Deadline.derive` builds a child whose budgets
are capped by the parent's remaining allowance and which inherits the
parent's heartbeat sink, injected stage delays, and (by default) memory
budget — so a campaign worker's heartbeat-only supervisor keeps beating
from inside a ``verify()`` call that installed its own attempt budget.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any, Callable, Dict, Optional, Union

from ..errors import BudgetExhausted
from .memory import MemoryBudget

__all__ = [
    "Deadline",
    "NullDeadline",
    "NULL_DEADLINE",
    "current_deadline",
    "use_deadline",
]


class Deadline:
    """One supervision scope; see the module docstring."""

    __slots__ = (
        "max_wall_seconds",
        "max_cpu_seconds",
        "memory",
        "heartbeat",
        "heartbeat_interval",
        "tick_every",
        "stage_delays",
        "checks",
        "heartbeats_sent",
        "_start_wall",
        "_start_cpu",
        "_next_beat",
        "_ticks",
        "_next_check_tick",
    )

    def __init__(
        self,
        max_wall_seconds: Optional[float] = None,
        max_cpu_seconds: Optional[float] = None,
        memory: Optional[MemoryBudget] = None,
        *,
        heartbeat: Optional[Callable[[str], None]] = None,
        heartbeat_interval: float = 1.0,
        tick_every: int = 256,
        stage_delays: Optional[Dict[str, float]] = None,
    ) -> None:
        self.max_wall_seconds = max_wall_seconds
        self.max_cpu_seconds = max_cpu_seconds
        self.memory = memory
        self.heartbeat = heartbeat
        self.heartbeat_interval = heartbeat_interval
        self.tick_every = max(1, int(tick_every))
        #: stage name (or ``"*"``) -> seconds each check of that stage
        #: sleeps; the ``slow`` fault's injection point.
        self.stage_delays: Dict[str, float] = dict(stage_delays or {})
        self.checks = 0
        self.heartbeats_sent = 0
        self._start_wall = time.monotonic()
        self._start_cpu = time.process_time()
        self._next_beat = self._start_wall  # first check beats immediately
        self._ticks = 0
        self._next_check_tick = self.tick_every

    # -- clocks ----------------------------------------------------------

    @property
    def bounded(self) -> bool:
        """True when any budget (wall, CPU or memory) is set."""
        return (
            self.max_wall_seconds is not None
            or self.max_cpu_seconds is not None
            or self.memory is not None
        )

    def elapsed_wall(self) -> float:
        return time.monotonic() - self._start_wall

    def elapsed_cpu(self) -> float:
        return time.process_time() - self._start_cpu

    def remaining_wall(self) -> Optional[float]:
        """Seconds of wall budget left; ``None`` when unbounded."""
        if self.max_wall_seconds is None:
            return None
        return max(0.0, self.max_wall_seconds - self.elapsed_wall())

    def remaining_cpu(self) -> Optional[float]:
        if self.max_cpu_seconds is None:
            return None
        return max(0.0, self.max_cpu_seconds - self.elapsed_cpu())

    # -- the check sites -------------------------------------------------

    def check(self, stage: str) -> None:
        """Heartbeat, honor injected delays, and enforce every budget."""
        self.checks += 1
        if self.stage_delays:
            delay = self.stage_delays.get(stage) or self.stage_delays.get("*")
            if delay:
                time.sleep(delay)
        if self.heartbeat is not None:
            now = time.monotonic()
            if now >= self._next_beat:
                self._next_beat = now + self.heartbeat_interval
                self.heartbeats_sent += 1
                self.heartbeat(stage)
        if self.max_wall_seconds is not None:
            elapsed = self.elapsed_wall()
            if elapsed > self.max_wall_seconds:
                raise BudgetExhausted(
                    f"wall-clock deadline of {self.max_wall_seconds:.3f}s "
                    f"exceeded in stage {stage!r} "
                    f"({elapsed:.3f}s elapsed)",
                    seconds=elapsed,
                    budget_kind="wall",
                    stage=stage,
                )
        if self.max_cpu_seconds is not None:
            cpu = self.elapsed_cpu()
            if cpu > self.max_cpu_seconds:
                raise BudgetExhausted(
                    f"CPU deadline of {self.max_cpu_seconds:.3f}s exceeded "
                    f"in stage {stage!r} ({cpu:.3f}s CPU spent)",
                    seconds=cpu,
                    budget_kind="cpu",
                    stage=stage,
                )
        if self.memory is not None:
            self.memory.check(stage)

    def tick(self, stage: str) -> None:
        """Per-DAG-node site: charge a node, check every ``tick_every``."""
        self._ticks += 1
        if self.memory is not None:
            self.memory.charged_nodes += 1
        if self._ticks >= self._next_check_tick:
            self._next_check_tick = self._ticks + self.tick_every
            self.check(stage)

    def charge(self, nodes: int = 0, bytes_: int = 0) -> None:
        """Attribute known allocations to the memory budget (no check)."""
        if self.memory is not None:
            self.memory.charge(nodes=nodes, bytes_=bytes_)

    # -- composition -----------------------------------------------------

    def add_stage_delay(self, stage: str, seconds: float) -> None:
        """Sleep ``seconds`` at every future check of ``stage`` (``"*"``
        for all stages) — the ``slow`` fault's hook."""
        self.stage_delays[stage] = seconds

    def derive(
        self,
        max_wall_seconds: Optional[float] = None,
        max_cpu_seconds: Optional[float] = None,
        memory: Optional[MemoryBudget] = None,
    ) -> "Deadline":
        """A child deadline with fresh clock anchors.

        The child's budgets are capped by this deadline's remaining
        allowance (a ``verify()`` attempt can never outlive its worker's
        supervisor), and the heartbeat sink, injected stage delays and —
        unless overridden — memory budget are inherited by reference.
        """
        wall = _cap(max_wall_seconds, self.remaining_wall())
        cpu = _cap(max_cpu_seconds, self.remaining_cpu())
        return Deadline(
            max_wall_seconds=wall,
            max_cpu_seconds=cpu,
            memory=memory if memory is not None else self.memory,
            heartbeat=self.heartbeat,
            heartbeat_interval=self.heartbeat_interval,
            tick_every=self.tick_every,
            stage_delays=self.stage_delays,
        )

    def counters(self) -> Dict[str, float]:
        """Observability counters in the ``guard.*`` namespace."""
        counters = {
            "guard.checks": float(self.checks),
            "guard.ticks": float(self._ticks),
            "guard.heartbeats": float(self.heartbeats_sent),
        }
        if self.memory is not None:
            counters.update(self.memory.counters())
        return counters


def _cap(requested: Optional[float], ceiling: Optional[float]) -> Optional[float]:
    if ceiling is None:
        return requested
    if requested is None:
        return ceiling
    return min(requested, ceiling)


class NullDeadline:
    """Inert deadline; the ambient default when supervision is off.

    Every method is an allocation-free no-op, so the check sites cost one
    ContextVar read plus one no-op call when no budget is installed.
    """

    __slots__ = ()
    max_wall_seconds = None
    max_cpu_seconds = None
    memory = None
    heartbeat = None
    bounded = False
    checks = 0
    heartbeats_sent = 0
    stage_delays: Dict[str, float] = {}

    def check(self, stage: str) -> None:
        pass

    def tick(self, stage: str) -> None:
        pass

    def charge(self, nodes: int = 0, bytes_: int = 0) -> None:
        pass

    def add_stage_delay(self, stage: str, seconds: float) -> None:
        # No supervision scope to attach the delay to; dropped by design
        # (the `slow` fault is a no-op outside a supervised run).
        pass

    def elapsed_wall(self) -> float:
        return 0.0

    def elapsed_cpu(self) -> float:
        return 0.0

    def remaining_wall(self) -> Optional[float]:
        return None

    def remaining_cpu(self) -> Optional[float]:
        return None

    def derive(
        self,
        max_wall_seconds: Optional[float] = None,
        max_cpu_seconds: Optional[float] = None,
        memory: Optional[MemoryBudget] = None,
    ) -> Deadline:
        return Deadline(
            max_wall_seconds=max_wall_seconds,
            max_cpu_seconds=max_cpu_seconds,
            memory=memory,
        )

    def counters(self) -> Dict[str, float]:
        return {}


NULL_DEADLINE = NullDeadline()

#: What the ambient slot holds: a real scope or the inert default.
DeadlineLike = Union[Deadline, NullDeadline]

_ACTIVE: ContextVar[DeadlineLike] = ContextVar(
    "repro_guard_deadline", default=NULL_DEADLINE
)


def current_deadline() -> DeadlineLike:
    """The ambient deadline (a :class:`Deadline` or :data:`NULL_DEADLINE`)."""
    return _ACTIVE.get()


class use_deadline:
    """Context manager installing ``deadline`` as the ambient deadline.

    Entering also anchors the deadline's memory budget samplers
    (:meth:`MemoryBudget.start`/``stop``), reference-counted so a derived
    deadline sharing its parent's budget anchors it exactly once.
    """

    __slots__ = ("_deadline", "_token")

    def __init__(self, deadline: DeadlineLike) -> None:
        self._deadline = deadline

    def __enter__(self) -> DeadlineLike:
        memory = getattr(self._deadline, "memory", None)
        if memory is not None:
            memory.start()
        self._token = _ACTIVE.set(self._deadline)
        return self._deadline

    def __exit__(self, *exc_info: Any) -> bool:
        _ACTIVE.reset(self._token)
        memory = getattr(self._deadline, "memory", None)
        if memory is not None:
            memory.stop()
        return False
