"""Supervision and resource governance for the verification pipeline.

``repro.guard`` makes long-running verification cooperative and
killable: ambient :class:`Deadline` objects (wall/CPU budgets checked at
every pipeline layer), :class:`MemoryBudget` (charged counters plus
sampling), and a per-config-family :class:`CircuitBreaker` for
campaigns.  See :mod:`repro.guard.deadline` for the check-site
discipline and :mod:`repro.campaign.parallel` for the worker heartbeat
protocol built on top of the deadline check sites.
"""

from .breaker import SHORT_CIRCUIT_PREFIX, CircuitBreaker
from .deadline import (
    NULL_DEADLINE,
    Deadline,
    NullDeadline,
    current_deadline,
    use_deadline,
)
from .memory import MemoryBudget

__all__ = [
    "CircuitBreaker",
    "SHORT_CIRCUIT_PREFIX",
    "Deadline",
    "NullDeadline",
    "NULL_DEADLINE",
    "MemoryBudget",
    "current_deadline",
    "use_deadline",
]
