"""Cooperative memory budgets for the verification pipeline.

A :class:`MemoryBudget` bounds the memory a run may attribute to itself.
It never inspects the allocator directly on the hot path; instead it
combines three evidence sources, cheapest first:

* **charged counters** — the pipeline layers charge work they know the
  size of: DAG-node ticks at the traversal choke points (via
  :meth:`repro.guard.deadline.Deadline.tick`) and learned-clause bytes in
  the SAT solver.  Integer arithmetic only, always on.
* **tracemalloc sampling** — when :mod:`tracemalloc` is tracing (started
  by the budget itself when ``trace_allocations=True``, or already on),
  every Nth check samples the traced delta since :meth:`start`.
* **RSS high-water mark** — every Nth check also samples
  ``resource.getrusage(...).ru_maxrss`` growth since :meth:`start`, which
  catches allocations Python-level accounting cannot see.

The reported usage is the maximum of the sources, so an injected
``memory_bloat`` fault (which charges explicitly) trips the budget
deterministically even where the samplers are unavailable.

Exhaustion raises :class:`~repro.errors.MemoryBudgetExhausted`, which the
campaign executor treats exactly like a conflict-budget blow-up: journal
the failed attempt and retry with an escalated budget — the campaign
analogue of the paper's 4 GB memory-limit kills (Sect. 7.1).
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Dict

from ..errors import MemoryBudgetExhausted

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["MemoryBudget"]

#: Rough per-DAG-node footprint (hash-consed node + intern-table entry).
NODE_BYTES = 88

#: ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


class MemoryBudget:
    """A byte budget checked cooperatively at the pipeline choke points."""

    __slots__ = (
        "max_bytes",
        "charged_bytes",
        "charged_nodes",
        "peak_bytes",
        "sample_every",
        "trace_allocations",
        "_checks",
        "_started_tracing",
        "_trace_baseline",
        "_rss_baseline",
        "_active_depth",
    )

    def __init__(
        self,
        max_bytes: int,
        *,
        sample_every: int = 64,
        trace_allocations: bool = False,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self.charged_bytes = 0
        self.charged_nodes = 0
        self.peak_bytes = 0
        self.sample_every = max(1, int(sample_every))
        self.trace_allocations = trace_allocations
        self._checks = 0
        self._started_tracing = False
        self._trace_baseline = 0
        self._rss_baseline = 0
        self._active_depth = 0

    @classmethod
    def from_mb(cls, megabytes: float, **kwargs: Any) -> "MemoryBudget":
        return cls(int(megabytes * 1024 * 1024), **kwargs)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Anchor the samplers; nested starts are reference-counted so a
        budget shared between a parent and a derived deadline anchors
        exactly once."""
        self._active_depth += 1
        if self._active_depth > 1:
            return
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        if tracemalloc.is_tracing():
            self._trace_baseline = tracemalloc.get_traced_memory()[0]
        self._rss_baseline = _rss_bytes()

    def stop(self) -> None:
        if self._active_depth > 0:
            self._active_depth -= 1
        if self._active_depth == 0 and self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False

    # -- accounting ------------------------------------------------------

    def charge(self, nodes: int = 0, bytes_: int = 0) -> None:
        """Attribute known work to the budget (no check; cheap)."""
        if nodes:
            self.charged_nodes += nodes
        if bytes_:
            self.charged_bytes += bytes_

    def usage_bytes(self, sample: bool = True) -> int:
        """Current attributed usage; with ``sample`` the slow sources too."""
        usage = self.charged_bytes + self.charged_nodes * NODE_BYTES
        if sample:
            if tracemalloc.is_tracing():
                traced = tracemalloc.get_traced_memory()[0]
                usage = max(usage, traced - self._trace_baseline)
            rss = _rss_bytes()
            if rss and self._rss_baseline:
                usage = max(usage, rss - self._rss_baseline)
        if usage > self.peak_bytes:
            self.peak_bytes = usage
        return usage

    def check(self, stage: str) -> None:
        """Raise :class:`MemoryBudgetExhausted` when over budget.

        The charged counters are compared on every call; the samplers run
        on every ``sample_every``-th call only.
        """
        self._checks += 1
        sample = self._checks % self.sample_every == 0
        usage = self.usage_bytes(sample=sample)
        if usage > self.max_bytes:
            raise MemoryBudgetExhausted(
                f"memory budget of {self.max_bytes} bytes exceeded in stage "
                f"{stage!r} ({usage} bytes attributed: "
                f"{self.charged_nodes} DAG nodes, "
                f"{self.charged_bytes} charged bytes)",
                bytes_used=usage,
                max_bytes=self.max_bytes,
                stage=stage,
            )

    def counters(self) -> Dict[str, float]:
        """Observability counters in the ``guard.*`` namespace."""
        return {
            "guard.memory_checks": float(self._checks),
            "guard.memory_peak_bytes": float(self.peak_bytes),
            "guard.memory_charged_nodes": float(self.charged_nodes),
            "guard.memory_charged_bytes": float(self.charged_bytes),
        }


def _rss_bytes() -> int:
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT
