"""Per-config-family circuit breaker for verification campaigns.

A campaign grid typically scales one dimension (the paper's Table 2
scales the reorder-buffer size N within a fixed method / issue-width
family).  When a family's small configurations already exhaust every
budget and fallback, its larger siblings will too — only slower.  The
breaker watches *consecutive* terminal failures per family
(``INCONCLUSIVE`` results; ``BUG_FOUND`` is a successful verdict) and,
once the threshold is reached, *opens*: remaining jobs of that family
short-circuit to ``INCONCLUSIVE`` without running, and the runner
journals one ``circuit_open`` event.

The breaker is per-campaign state, not persisted: on resume, the runner
re-seeds it from the replayed terminal results, so an interrupted
campaign converges to the same short-circuit decisions.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

__all__ = ["CircuitBreaker", "SHORT_CIRCUIT_PREFIX"]

#: ``JobResult.detail`` prefix of a short-circuited outcome.  Results
#: carrying it are *decisions of the breaker*, not evidence about the
#: configuration, so the runner never feeds them back into
#: :meth:`CircuitBreaker.record` (neither live nor on journal replay).
SHORT_CIRCUIT_PREFIX = "circuit breaker open"


class CircuitBreaker:
    """Counts consecutive failures per family; opens at ``threshold``."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        self.threshold = threshold
        self._consecutive: Dict[str, int] = {}
        self._open: Set[str] = set()

    def is_open(self, family: str) -> bool:
        return family in self._open

    @property
    def open_families(self) -> Tuple[str, ...]:
        return tuple(sorted(self._open))

    def record(self, family: str, failed: bool) -> bool:
        """Record one terminal outcome; returns True when this record
        just opened the family's circuit (journal the transition)."""
        if family in self._open:
            return False
        if not failed:
            self._consecutive[family] = 0
            return False
        count = self._consecutive.get(family, 0) + 1
        self._consecutive[family] = count
        if count >= self.threshold:
            self._open.add(family)
            return True
        return False
